package perf

import (
	"fmt"
	"sort"
	"strings"
)

// Op is an abstract dynamic-operation class. The classes mirror the
// x86 instruction categories the paper reports in Tables 9 and 12,
// abstracted away from any particular ISA: a Load stands for a
// memory-read mov, a TableLookup for an indexed load from a constant
// table, AddC for add-with-carry, and so on. Counting kernels in the
// crypto packages emit these into a Trace; the perf package then
// reports path length (ops per byte), estimated CPI, and the dynamic
// mix, replacing the paper's SoftSDV instruction traces.
type Op int

// Abstract operation classes.
const (
	OpLoad   Op = iota // memory read (mov reg, mem)
	OpStore            // memory write (mov mem, reg)
	OpMove             // register-to-register move
	OpXor              // bitwise exclusive or
	OpAnd              // bitwise and
	OpOr               // bitwise or
	OpNot              // bitwise complement
	OpAdd              // integer add / sub / inc / dec / lea
	OpAddC             // add with carry (adc) / subtract with borrow
	OpMul              // widening multiply
	OpShift            // logical shift (shl/shr)
	OpRotate           // rotate (rol/ror)
	OpLookup           // table lookup: indexed load from a constant table
	OpBranch           // conditional or unconditional branch
	OpCmp              // compare / test
	opCount
)

var opNames = [...]string{
	OpLoad:   "load",
	OpStore:  "store",
	OpMove:   "move",
	OpXor:    "xor",
	OpAnd:    "and",
	OpOr:     "or",
	OpNot:    "not",
	OpAdd:    "add",
	OpAddC:   "adc",
	OpMul:    "mul",
	OpShift:  "shift",
	OpRotate: "rotate",
	OpLookup: "lookup",
	OpBranch: "branch",
	OpCmp:    "cmp",
}

// String returns the short mnemonic for the op class.
func (o Op) String() string {
	if o < 0 || int(o) >= len(opNames) {
		return fmt.Sprintf("op(%d)", int(o))
	}
	return opNames[o]
}

// NumOps is the number of distinct operation classes.
const NumOps = int(opCount)

// opLatency models per-class execution cost in cycles on a wide
// superscalar core, tuned so compute-bound kernels land in the
// 0.5–0.8 CPI band the paper reports (Table 11). L1-hitting loads and
// simple ALU ops retire below one cycle each on average thanks to
// superscalar issue; widening multiplies and carry chains are the
// expensive classes — exactly why the paper finds RSA has the highest
// CPI of the set.
var opLatency = [...]float64{
	OpLoad:   0.60,
	OpStore:  0.55,
	OpMove:   0.40,
	OpXor:    0.45,
	OpAnd:    0.45,
	OpOr:     0.45,
	OpNot:    0.45,
	OpAdd:    0.50,
	OpAddC:   1.00, // serializing carry chain
	OpMul:    2.50, // widening multiply
	OpShift:  0.55,
	OpRotate: 0.65,
	OpLookup: 0.70, // indexed L1 load
	OpBranch: 0.80,
	OpCmp:    0.45,
}

// A Trace accumulates abstract operation counts emitted by a counting
// kernel. The zero Trace is ready to use.
type Trace struct {
	counts [opCount]uint64
	// Bytes is the number of payload bytes the traced activity
	// processed; it is the denominator for path length.
	Bytes uint64
}

// Emit records n occurrences of op.
func (t *Trace) Emit(op Op, n uint64) { t.counts[op] += n }

// N1 records one occurrence of op.
func (t *Trace) N1(op Op) { t.counts[op]++ }

// Count returns the number of recorded occurrences of op.
func (t *Trace) Count(op Op) uint64 { return t.counts[op] }

// Total returns the total dynamic operation count.
func (t *Trace) Total() uint64 {
	var sum uint64
	for _, c := range t.counts {
		sum += c
	}
	return sum
}

// Reset clears all counts and the byte tally.
func (t *Trace) Reset() {
	t.counts = [opCount]uint64{}
	t.Bytes = 0
}

// Add merges other's counts and bytes into t.
func (t *Trace) Add(other *Trace) {
	for i := range t.counts {
		t.counts[i] += other.counts[i]
	}
	t.Bytes += other.Bytes
}

// PathLength returns dynamic operations per processed byte
// (the paper's "path length, instructions per byte").
// It returns 0 when no bytes were recorded.
func (t *Trace) PathLength() float64 {
	if t.Bytes == 0 {
		return 0
	}
	return float64(t.Total()) / float64(t.Bytes)
}

// CPI estimates cycles per instruction from the per-class latency
// model. It returns 0 for an empty trace.
func (t *Trace) CPI() float64 {
	total := t.Total()
	if total == 0 {
		return 0
	}
	var cycles float64
	for op, c := range t.counts {
		cycles += float64(c) * opLatency[op]
	}
	return cycles / float64(total)
}

// EstimatedCycles returns the modeled cycle cost of the whole trace.
func (t *Trace) EstimatedCycles() float64 {
	var cycles float64
	for op, c := range t.counts {
		cycles += float64(c) * opLatency[op]
	}
	return cycles
}

// ThroughputMBps estimates achievable throughput in megabytes per
// second at ModelGHz, from the modeled cycle cost.
func (t *Trace) ThroughputMBps() float64 {
	cyc := t.EstimatedCycles()
	if cyc == 0 || t.Bytes == 0 {
		return 0
	}
	cyclesPerByte := cyc / float64(t.Bytes)
	bytesPerSec := ModelGHz() * 1e9 / cyclesPerByte
	return bytesPerSec / 1e6
}

// MixEntry is one row of a dynamic instruction-mix report.
type MixEntry struct {
	Op      Op
	Count   uint64
	Percent float64
}

// Mix returns the dynamic operation mix sorted by descending share.
func (t *Trace) Mix() []MixEntry {
	total := t.Total()
	out := make([]MixEntry, 0, opCount)
	for op, c := range t.counts {
		if c == 0 {
			continue
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(c) / float64(total)
		}
		out = append(out, MixEntry{Op: Op(op), Count: c, Percent: pct})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

// TopMix returns at most n mix entries plus the percentage of all
// operations they jointly cover (the paper's "top ten instructions"
// tables report this coverage row).
func (t *Trace) TopMix(n int) ([]MixEntry, float64) {
	mix := t.Mix()
	if len(mix) > n {
		mix = mix[:n]
	}
	var covered float64
	for _, e := range mix {
		covered += e.Percent
	}
	return mix, covered
}

// String renders the mix as an aligned table.
func (t *Trace) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %12s %8s\n", "op", "count", "%")
	for _, e := range t.Mix() {
		fmt.Fprintf(&sb, "%-8s %12d %7.2f%%\n", e.Op, e.Count, e.Percent)
	}
	fmt.Fprintf(&sb, "total ops %d, path length %.2f ops/B, est CPI %.2f\n",
		t.Total(), t.PathLength(), t.CPI())
	return sb.String()
}
