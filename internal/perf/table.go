package perf

import (
	"encoding/json"
	"fmt"
	"strings"
)

// A Table is a simple aligned-text table used by the experiment
// runners to print paper-style tables.
type Table struct {
	Title  string
	header []string
	rows   [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// AddRow appends a row; cells beyond the header width are dropped and
// missing cells are left blank.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row built from format/args pairs: each cell is a
// fmt.Sprint of the corresponding argument.
func (t *Table) AddRowf(cells ...interface{}) {
	s := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			s[i] = fmt.Sprintf("%.2f", v)
		case string:
			s[i] = v
		default:
			s[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(s...)
}

// NumRows reports the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Header returns a copy of the column headers.
func (t *Table) Header() []string {
	return append([]string(nil), t.header...)
}

// Rows returns a copy of the data rows.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, row := range t.rows {
		out[i] = append([]string(nil), row...)
	}
	return out
}

// MarshalJSON renders the table as {title, header, rows} so reports
// are machine-readable (the sslanatomy -json mode).
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := t.rows
	if rows == nil {
		rows = [][]string{}
	}
	return json.Marshal(struct {
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}{Title: t.Title, Header: t.header, Rows: rows})
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}
