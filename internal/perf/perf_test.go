package perf

import (
	"strings"
	"testing"
	"time"
)

func TestCyclesRoundTrip(t *testing.T) {
	d := 100 * time.Microsecond
	c := Cycles(d)
	if c <= 0 {
		t.Fatalf("Cycles(%v) = %v, want > 0", d, c)
	}
	back := Duration(c)
	if diff := back - d; diff > time.Microsecond || diff < -time.Microsecond {
		t.Fatalf("Duration(Cycles(%v)) = %v, want ~%v", d, back, d)
	}
}

func TestCyclesScalesWithModelGHz(t *testing.T) {
	old := ModelGHz()
	defer SetModelGHz(old)
	SetModelGHz(1.0)
	if got := Cycles(time.Nanosecond); got != 1.0 {
		t.Fatalf("Cycles(1ns) at 1GHz = %v, want 1", got)
	}
	SetModelGHz(2.0)
	if got := Cycles(time.Nanosecond); got != 2.0 {
		t.Fatalf("Cycles(1ns) at 2GHz = %v, want 2", got)
	}
	// Non-positive values must not take effect: a zero-valued -ghz
	// flag would otherwise zero every cycle figure.
	SetModelGHz(0)
	if got := ModelGHz(); got != 2.0 {
		t.Fatalf("ModelGHz after SetModelGHz(0) = %v, want 2", got)
	}
	SetModelGHz(-1)
	if got := ModelGHz(); got != 2.0 {
		t.Fatalf("ModelGHz after SetModelGHz(-1) = %v, want 2", got)
	}
}

// TestModelGHzConcurrentAccess exercises the flag-vs-render race the
// accessor exists to fix; it fails under -race if the frequency ever
// becomes a plain global again.
func TestModelGHzConcurrentAccess(t *testing.T) {
	old := ModelGHz()
	defer SetModelGHz(old)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			SetModelGHz(1.0 + float64(i%3))
		}
	}()
	for i := 0; i < 1000; i++ {
		if c := Cycles(time.Microsecond); c <= 0 {
			t.Fatalf("Cycles = %v, want > 0", c)
		}
	}
	<-done
}

func TestTimerAccumulates(t *testing.T) {
	var tm Timer
	tm.Start()
	time.Sleep(2 * time.Millisecond)
	tm.Stop()
	first := tm.Elapsed()
	if first < time.Millisecond {
		t.Fatalf("elapsed %v, want >= 1ms", first)
	}
	tm.Start()
	time.Sleep(2 * time.Millisecond)
	tm.Stop()
	if tm.Elapsed() <= first {
		t.Fatalf("second interval not accumulated: %v <= %v", tm.Elapsed(), first)
	}
}

func TestTimerIdempotentStartStop(t *testing.T) {
	var tm Timer
	tm.Start()
	tm.Start() // no-op
	tm.Stop()
	e := tm.Elapsed()
	tm.Stop() // no-op
	if tm.Elapsed() != e {
		t.Fatalf("Stop on stopped timer changed elapsed")
	}
}

func TestTimerReset(t *testing.T) {
	var tm Timer
	tm.Start()
	time.Sleep(time.Millisecond)
	tm.Stop()
	tm.Reset()
	if tm.Elapsed() != 0 {
		t.Fatalf("after Reset elapsed = %v, want 0", tm.Elapsed())
	}
}

func TestTimerElapsedWhileRunning(t *testing.T) {
	var tm Timer
	tm.Start()
	time.Sleep(time.Millisecond)
	if tm.Elapsed() == 0 {
		t.Fatal("running timer reported zero elapsed")
	}
	tm.Stop()
}

func TestBreakdownBasics(t *testing.T) {
	b := NewBreakdown()
	b.Add("a", 10*time.Millisecond)
	b.Add("b", 30*time.Millisecond)
	b.Add("a", 10*time.Millisecond)
	if got := b.Elapsed("a"); got != 20*time.Millisecond {
		t.Fatalf("Elapsed(a) = %v, want 20ms", got)
	}
	if got := b.Count("a"); got != 2 {
		t.Fatalf("Count(a) = %d, want 2", got)
	}
	if got := b.Total(); got != 50*time.Millisecond {
		t.Fatalf("Total = %v, want 50ms", got)
	}
	if got := b.Percent("b"); got != 60 {
		t.Fatalf("Percent(b) = %v, want 60", got)
	}
	names := b.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v, want [a b]", names)
	}
}

func TestBreakdownEmptyPercent(t *testing.T) {
	b := NewBreakdown()
	if got := b.Percent("missing"); got != 0 {
		t.Fatalf("Percent on empty = %v, want 0", got)
	}
}

func TestBreakdownTime(t *testing.T) {
	b := NewBreakdown()
	d := b.Time("work", func() { time.Sleep(time.Millisecond) })
	if d < time.Millisecond {
		t.Fatalf("Time returned %v, want >= 1ms", d)
	}
	if b.Elapsed("work") != d {
		t.Fatalf("attributed %v, returned %v", b.Elapsed("work"), d)
	}
}

func TestBreakdownScale(t *testing.T) {
	b := NewBreakdown()
	b.Add("a", 100*time.Millisecond)
	b.Scale(10)
	if got := b.Elapsed("a"); got != 10*time.Millisecond {
		t.Fatalf("after Scale(10): %v, want 10ms", got)
	}
}

func TestBreakdownScalePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Scale(0) did not panic")
		}
	}()
	NewBreakdown().Scale(0)
}

func TestBreakdownMerge(t *testing.T) {
	a := NewBreakdown()
	a.Add("x", time.Second)
	b := NewBreakdown()
	b.Add("x", time.Second)
	b.Add("y", 2*time.Second)
	b.Add("y", time.Second)
	a.Merge(b)
	if got := a.Elapsed("x"); got != 2*time.Second {
		t.Fatalf("merged x = %v, want 2s", got)
	}
	if got := a.Elapsed("y"); got != 3*time.Second {
		t.Fatalf("merged y = %v, want 3s", got)
	}
	if got := a.Count("y"); got != 2 {
		t.Fatalf("merged count(y) = %d, want 2", got)
	}
}

func TestBreakdownSortedByElapsed(t *testing.T) {
	b := NewBreakdown()
	b.Add("small", time.Millisecond)
	b.Add("big", time.Second)
	s := b.SortedByElapsed()
	if s[0].Name != "big" {
		t.Fatalf("sorted[0] = %q, want big", s[0].Name)
	}
}

func TestBreakdownString(t *testing.T) {
	b := NewBreakdown()
	b.Add("step1", time.Millisecond)
	out := b.String()
	if !strings.Contains(out, "step1") || !strings.Contains(out, "total") {
		t.Fatalf("String() missing expected content:\n%s", out)
	}
}

func TestTraceCountsAndTotal(t *testing.T) {
	var tr Trace
	tr.Emit(OpXor, 10)
	tr.N1(OpXor)
	tr.Emit(OpMul, 5)
	if got := tr.Count(OpXor); got != 11 {
		t.Fatalf("Count(xor) = %d, want 11", got)
	}
	if got := tr.Total(); got != 16 {
		t.Fatalf("Total = %d, want 16", got)
	}
}

func TestTracePathLength(t *testing.T) {
	var tr Trace
	tr.Emit(OpAdd, 200)
	tr.Bytes = 100
	if got := tr.PathLength(); got != 2.0 {
		t.Fatalf("PathLength = %v, want 2", got)
	}
	var empty Trace
	if got := empty.PathLength(); got != 0 {
		t.Fatalf("empty PathLength = %v, want 0", got)
	}
}

func TestTraceCPIBounds(t *testing.T) {
	var tr Trace
	tr.Emit(OpXor, 50)
	tr.Emit(OpLoad, 30)
	tr.Emit(OpAdd, 20)
	cpi := tr.CPI()
	if cpi < 0.3 || cpi > 1.0 {
		t.Fatalf("CPI = %v, want within the paper's compute-bound band", cpi)
	}
	var empty Trace
	if empty.CPI() != 0 {
		t.Fatalf("empty CPI = %v, want 0", empty.CPI())
	}
}

func TestTraceMulRaisesCPI(t *testing.T) {
	var logical, mul Trace
	logical.Emit(OpXor, 100)
	mul.Emit(OpMul, 100)
	if mul.CPI() <= logical.CPI() {
		t.Fatalf("mul CPI %v should exceed xor CPI %v (paper: RSA highest CPI)",
			mul.CPI(), logical.CPI())
	}
}

func TestTraceAddAndReset(t *testing.T) {
	var a, b Trace
	a.Emit(OpAnd, 3)
	a.Bytes = 10
	b.Emit(OpAnd, 2)
	b.Emit(OpOr, 1)
	b.Bytes = 5
	a.Add(&b)
	if a.Count(OpAnd) != 5 || a.Count(OpOr) != 1 || a.Bytes != 15 {
		t.Fatalf("Add merged wrong: %v", a)
	}
	a.Reset()
	if a.Total() != 0 || a.Bytes != 0 {
		t.Fatalf("Reset did not clear")
	}
}

func TestTraceMixSortedAndCoverage(t *testing.T) {
	var tr Trace
	tr.Emit(OpLoad, 50)
	tr.Emit(OpXor, 30)
	tr.Emit(OpAdd, 20)
	mix := tr.Mix()
	if len(mix) != 3 || mix[0].Op != OpLoad || mix[0].Percent != 50 {
		t.Fatalf("Mix = %+v", mix)
	}
	top, cov := tr.TopMix(2)
	if len(top) != 2 || cov != 80 {
		t.Fatalf("TopMix(2) = %+v coverage %v, want 2 entries covering 80%%", top, cov)
	}
}

func TestTraceThroughput(t *testing.T) {
	var tr Trace
	tr.Emit(OpXor, 1000)
	tr.Bytes = 1000
	mbps := tr.ThroughputMBps()
	if mbps <= 0 {
		t.Fatalf("ThroughputMBps = %v, want > 0", mbps)
	}
	var empty Trace
	if empty.ThroughputMBps() != 0 {
		t.Fatal("empty trace throughput should be 0")
	}
}

func TestOpString(t *testing.T) {
	if OpAddC.String() != "adc" {
		t.Fatalf("OpAddC = %q, want adc", OpAddC.String())
	}
	if got := Op(99).String(); !strings.Contains(got, "99") {
		t.Fatalf("out-of-range op string = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table X", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	tb.AddRow("gamma") // short row padded
	out := tb.String()
	for _, want := range []string{"Table X", "alpha", "beta", "2.50", "gamma"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 3 {
		t.Fatalf("NumRows = %d, want 3", tb.NumRows())
	}
}

func TestTraceString(t *testing.T) {
	var tr Trace
	tr.Emit(OpRotate, 7)
	tr.Bytes = 7
	out := tr.String()
	if !strings.Contains(out, "rotate") || !strings.Contains(out, "path length") {
		t.Fatalf("Trace.String missing content:\n%s", out)
	}
}

// TestBreakdownMergeCountSemantics pins down the count bookkeeping:
// Merge adds other's counts, not one-per-region, and regions new to
// the receiver keep their full count and first-seen order.
func TestBreakdownMergeCountSemantics(t *testing.T) {
	a := NewBreakdown()
	a.Add("x", time.Second)
	a.Add("x", time.Second)

	b := NewBreakdown()
	for i := 0; i < 5; i++ {
		b.Add("x", time.Second)
	}
	for i := 0; i < 3; i++ {
		b.Add("new", time.Second)
	}
	a.Merge(b)

	if got := a.Count("x"); got != 7 {
		t.Fatalf("count(x) = %d, want 2+5=7", got)
	}
	if got := a.Count("new"); got != 3 {
		t.Fatalf("count(new) = %d, want 3", got)
	}
	if got := a.Elapsed("new"); got != 3*time.Second {
		t.Fatalf("elapsed(new) = %v, want 3s", got)
	}
	if names := a.Names(); len(names) != 2 || names[0] != "x" || names[1] != "new" {
		t.Fatalf("names = %v", names)
	}

	// Merging an empty breakdown changes nothing.
	before := a.Total()
	a.Merge(NewBreakdown())
	if a.Total() != before || a.Count("x") != 7 {
		t.Fatal("merge of empty breakdown mutated receiver")
	}

	// Merge is count-accurate even when the source region count is 1.
	c := NewBreakdown()
	c.Add("solo", time.Second)
	a.Merge(c)
	if got := a.Count("solo"); got != 1 {
		t.Fatalf("count(solo) = %d, want 1", got)
	}
}
