package perf

import (
	"sync"
	"time"

	"sslperf/internal/probe"
)

// A SharedBreakdown is a mutex-wrapped Breakdown for measurements
// aggregated across goroutines — e.g. the accel crypto-engine
// pipeline, where the hashing goroutine and the cipher goroutine
// attribute time concurrently. Plain Breakdown stays single-owner and
// lock-free for the sequential experiments.
type SharedBreakdown struct {
	mu sync.Mutex
	b  *Breakdown
}

// NewSharedBreakdown returns an empty shared breakdown.
func NewSharedBreakdown() *SharedBreakdown {
	return &SharedBreakdown{b: NewBreakdown()}
}

// Add attributes d to region name. Safe for concurrent use; a nil
// receiver is a no-op so instrumentation hooks need no guards.
func (s *SharedBreakdown) Add(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.b.Add(name, d)
	s.mu.Unlock()
}

// Time executes fn, attributing its duration to region name, and
// returns that duration. On a nil receiver fn still runs, untimed.
func (s *SharedBreakdown) Time(name string, fn func()) time.Duration {
	if s == nil {
		fn()
		return 0
	}
	start := time.Now()
	fn()
	d := time.Since(start)
	s.Add(name, d)
	return d
}

// Merge adds all of other's regions into s.
func (s *SharedBreakdown) Merge(other *Breakdown) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.b.Merge(other)
	s.mu.Unlock()
}

// Snapshot returns an independent single-owner copy of the current
// state, safe to render or merge without further locking.
func (s *SharedBreakdown) Snapshot() *Breakdown {
	out := NewBreakdown()
	if s == nil {
		return out
	}
	s.mu.Lock()
	out.Merge(s.b)
	s.mu.Unlock()
	return out
}

// Emit implements probe.Sink: engine-timer events fold into the
// breakdown under their region name, so a SharedBreakdown can sit
// directly on an engine's probe bus. Other event kinds are ignored.
func (s *SharedBreakdown) Emit(e probe.Event) {
	if e.Kind != probe.KindEngineTimer {
		return
	}
	s.Add(e.Fn, e.Dur)
}
