package perf

import (
	"strings"
	"testing"
	"time"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	if s.N() != 100 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("mean = %v", got)
	}
	if got := s.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := s.Percentile(99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := s.Percentile(100); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
	if s.Min() != time.Millisecond || s.Max() != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.StdDev() != 0 || s.Percentile(50) != 0 ||
		s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty series should report zeros")
	}
}

func TestSeriesStdDev(t *testing.T) {
	var s Series
	// Constant series: zero deviation.
	for i := 0; i < 10; i++ {
		s.Add(5 * time.Millisecond)
	}
	if s.StdDev() != 0 {
		t.Fatalf("constant stddev = %v", s.StdDev())
	}
	// Two-point series {0, 10ms}: population stddev = 5ms.
	var s2 Series
	s2.Add(0)
	s2.Add(10 * time.Millisecond)
	if got := s2.StdDev(); got != 5*time.Millisecond {
		t.Fatalf("stddev = %v, want 5ms", got)
	}
}

func TestSeriesAddAfterPercentile(t *testing.T) {
	var s Series
	s.Add(2 * time.Millisecond)
	_ = s.Percentile(50)
	s.Add(1 * time.Millisecond) // must re-sort
	if got := s.Min(); got != time.Millisecond {
		t.Fatalf("min after add = %v", got)
	}
}

func TestSeriesPercentileClamps(t *testing.T) {
	var s Series
	s.Add(time.Millisecond)
	if s.Percentile(-5) != time.Millisecond || s.Percentile(500) != time.Millisecond {
		t.Fatal("percentile clamping broken")
	}
}

func TestSeriesString(t *testing.T) {
	var s Series
	s.Add(time.Millisecond)
	if !strings.Contains(s.String(), "p99") {
		t.Fatalf("String = %q", s.String())
	}
}
