package perf

import (
	"strings"
	"testing"
	"time"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	if s.N() != 100 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("mean = %v", got)
	}
	if got := s.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := s.Percentile(99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := s.Percentile(100); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
	if s.Min() != time.Millisecond || s.Max() != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.StdDev() != 0 || s.Percentile(50) != 0 ||
		s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty series should report zeros")
	}
}

func TestSeriesStdDev(t *testing.T) {
	var s Series
	// Constant series: zero deviation.
	for i := 0; i < 10; i++ {
		s.Add(5 * time.Millisecond)
	}
	if s.StdDev() != 0 {
		t.Fatalf("constant stddev = %v", s.StdDev())
	}
	// Two-point series {0, 10ms}: population stddev = 5ms.
	var s2 Series
	s2.Add(0)
	s2.Add(10 * time.Millisecond)
	if got := s2.StdDev(); got != 5*time.Millisecond {
		t.Fatalf("stddev = %v, want 5ms", got)
	}
}

func TestSeriesAddAfterPercentile(t *testing.T) {
	var s Series
	s.Add(2 * time.Millisecond)
	_ = s.Percentile(50)
	s.Add(1 * time.Millisecond) // must re-sort
	if got := s.Min(); got != time.Millisecond {
		t.Fatalf("min after add = %v", got)
	}
}

func TestSeriesPercentileClamps(t *testing.T) {
	var s Series
	s.Add(time.Millisecond)
	if s.Percentile(-5) != time.Millisecond || s.Percentile(500) != time.Millisecond {
		t.Fatal("percentile clamping broken")
	}
}

func TestSeriesString(t *testing.T) {
	var s Series
	s.Add(time.Millisecond)
	if !strings.Contains(s.String(), "p99") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestSeriesSingleSample(t *testing.T) {
	var s Series
	s.Add(7 * time.Millisecond)
	if s.N() != 1 {
		t.Fatalf("N = %d", s.N())
	}
	// Every percentile of a one-sample series is that sample.
	for _, p := range []float64{0.001, 1, 50, 90, 99, 100} {
		if got := s.Percentile(p); got != 7*time.Millisecond {
			t.Fatalf("p%.3f = %v, want 7ms", p, got)
		}
	}
	if s.Mean() != 7*time.Millisecond || s.StdDev() != 0 {
		t.Fatalf("mean/stddev = %v/%v", s.Mean(), s.StdDev())
	}
	if s.Min() != s.Max() || s.Min() != 7*time.Millisecond {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSeriesUnsortedInput(t *testing.T) {
	// Samples arrive in descending and shuffled order; percentile
	// queries must still see the sorted view.
	var s Series
	for _, ms := range []int{90, 10, 50, 100, 30, 70, 20, 80, 60, 40} {
		s.Add(time.Duration(ms) * time.Millisecond)
	}
	if got := s.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v, want 50ms", got)
	}
	if got := s.Percentile(10); got != 10*time.Millisecond {
		t.Fatalf("p10 = %v, want 10ms", got)
	}
	if s.Min() != 10*time.Millisecond || s.Max() != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	// Interleave: a later out-of-order Add must invalidate the sort.
	s.Add(5 * time.Millisecond)
	if got := s.Percentile(1); got != 5*time.Millisecond {
		t.Fatalf("p1 after late add = %v, want 5ms", got)
	}
}

func TestSeriesEmptyPercentileAllRanks(t *testing.T) {
	var s Series
	for _, p := range []float64{-1, 0, 50, 100, 200} {
		if got := s.Percentile(p); got != 0 {
			t.Fatalf("empty p%.0f = %v, want 0", p, got)
		}
	}
	if s.String() == "" {
		t.Fatal("empty series String should still render")
	}
}
