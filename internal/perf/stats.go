package perf

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// A Series collects repeated duration measurements and reports
// distribution statistics — the per-request latency view the paper's
// averages flatten.
type Series struct {
	samples []time.Duration
	sorted  bool
}

// Add appends one measurement.
func (s *Series) Add(d time.Duration) {
	s.samples = append(s.samples, d)
	s.sorted = false
}

// N reports the sample count.
func (s *Series) N() int { return len(s.samples) }

// Mean returns the arithmetic mean (0 when empty).
func (s *Series) Mean() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range s.samples {
		sum += d
	}
	return sum / time.Duration(len(s.samples))
}

// StdDev returns the population standard deviation.
func (s *Series) StdDev() time.Duration {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	mean := float64(s.Mean())
	var ss float64
	for _, d := range s.samples {
		diff := float64(d) - mean
		ss += diff * diff
	}
	return time.Duration(math.Sqrt(ss / float64(n)))
}

func (s *Series) ensureSorted() {
	if !s.sorted {
		sort.Slice(s.samples, func(i, j int) bool { return s.samples[i] < s.samples[j] })
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p <= 100) by
// nearest-rank; 0 when empty.
func (s *Series) Percentile(p float64) time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	if p <= 0 {
		p = 1e-9
	}
	if p > 100 {
		p = 100
	}
	s.ensureSorted()
	rank := int(math.Ceil(p / 100 * float64(len(s.samples))))
	if rank < 1 {
		rank = 1
	}
	return s.samples[rank-1]
}

// Min returns the smallest sample (0 when empty).
func (s *Series) Min() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.samples[0]
}

// Max returns the largest sample (0 when empty).
func (s *Series) Max() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.samples[len(s.samples)-1]
}

// String summarizes the distribution.
func (s *Series) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p99=%v max=%v",
		s.N(), s.Mean(), s.Percentile(50), s.Percentile(90),
		s.Percentile(99), s.Max())
}
