package rc4

import (
	"bytes"
	stdrc4 "crypto/rc4"
	"encoding/hex"
	"testing"
	"testing/quick"

	"sslperf/internal/perf"
)

// RFC 6229-style known answers for classic test keys.
func TestKnownAnswers(t *testing.T) {
	cases := []struct{ key, pt, ct string }{
		{"0102030405", "0000000000000000", "b2396305f03dc027"},
		{"01020304050607", "0000000000000000", "293f02d47f37c9b6"},
		{"0102030405060708090a0b0c0d0e0f10", "0000000000000000", "9ac7cc9a609d1ef7"},
		// The classic "Key"/"Plaintext" vector.
		{hex.EncodeToString([]byte("Key")), hex.EncodeToString([]byte("Plaintext")), "bbf316e8d940af0ad3"},
	}
	for _, c := range cases {
		key, _ := hex.DecodeString(c.key)
		pt, _ := hex.DecodeString(c.pt)
		ci, err := New(key)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(pt))
		ci.XORKeyStream(got, pt)
		if hex.EncodeToString(got) != c.ct {
			t.Errorf("key %s: ct = %x, want %s", c.key, got, c.ct)
		}
	}
}

func TestRejectsBadKeySizes(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("accepted empty key")
	}
	if _, err := New(make([]byte, 257)); err == nil {
		t.Error("accepted 257-byte key")
	}
}

func TestAgainstStdlibProperty(t *testing.T) {
	f := func(key [16]byte, data []byte) bool {
		ours, err := New(key[:])
		if err != nil {
			return false
		}
		std, err := stdrc4.NewCipher(key[:])
		if err != nil {
			return false
		}
		got := make([]byte, len(data))
		want := make([]byte, len(data))
		ours.XORKeyStream(got, data)
		std.XORKeyStream(want, data)
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamContinuity(t *testing.T) {
	key := []byte("continuity-key")
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i)
	}
	// One call vs many small calls must produce the same stream.
	a, _ := New(key)
	whole := make([]byte, len(data))
	a.XORKeyStream(whole, data)
	b, _ := New(key)
	pieces := make([]byte, len(data))
	for i := 0; i < len(data); i += 7 {
		end := min(i+7, len(data))
		b.XORKeyStream(pieces[i:end], data[i:end])
	}
	if !bytes.Equal(whole, pieces) {
		t.Fatal("chunked keystream differs from whole")
	}
}

func TestEncryptDecryptInverse(t *testing.T) {
	key := []byte("inverse")
	data := []byte("the quick brown fox jumps over the lazy dog")
	enc, _ := New(key)
	ct := make([]byte, len(data))
	enc.XORKeyStream(ct, data)
	dec, _ := New(key)
	pt := make([]byte, len(ct))
	dec.XORKeyStream(pt, ct)
	if !bytes.Equal(pt, data) {
		t.Fatal("round trip failed")
	}
}

func TestInPlace(t *testing.T) {
	key := []byte("inplace")
	data := []byte("some data here")
	want := make([]byte, len(data))
	c1, _ := New(key)
	c1.XORKeyStream(want, data)
	c2, _ := New(key)
	buf := append([]byte{}, data...)
	c2.XORKeyStream(buf, buf)
	if !bytes.Equal(buf, want) {
		t.Fatal("in-place differs")
	}
}

func TestCharacteristics(t *testing.T) {
	ch := Characteristics()
	if ch.Name != "RC4" || ch.Lookups != 3 || ch.Tables != "1,256,8b" {
		t.Fatalf("characteristics = %+v", ch)
	}
}

func TestTraces(t *testing.T) {
	var setup, stream perf.Trace
	TraceKeySetup(&setup)
	TraceKeystream(&stream, 1024)
	if setup.Total() == 0 {
		t.Fatal("empty setup trace")
	}
	if stream.Bytes != 1024 {
		t.Fatal("stream bytes wrong")
	}
	// Table 11: RC4 path length 14 instr/byte — by far the shortest
	// of the symmetric set.
	if pl := stream.PathLength(); pl < 8 || pl > 30 {
		t.Fatalf("RC4 path length = %.1f, want ~14", pl)
	}
	// Per-byte generation reads the table 3 times.
	if got := stream.Count(perf.OpLookup); got != 3*1024 {
		t.Fatalf("lookups = %d, want %d", got, 3*1024)
	}
}
