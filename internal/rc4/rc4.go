// Package rc4 implements the RC4 stream cipher from scratch. The
// paper singles RC4 out for its heavyweight key setup — initializing
// a 256-entry state table — relative to its very simple per-byte
// generation kernel (3 table reads, 2 writes, AND/ADD/XOR), which is
// why its Figure 3 key-setup share is an order of magnitude above the
// block ciphers'.
package rc4

import (
	"errors"

	"sslperf/internal/cipherinfo"
	"sslperf/internal/perf"
)

// A Cipher is an RC4 stream cipher instance. Encryption and
// decryption are the same operation.
type Cipher struct {
	s    [256]byte
	i, j byte
}

// New performs the RC4 key schedule (KSA) over key (1–256 bytes).
func New(key []byte) (*Cipher, error) {
	if len(key) < 1 || len(key) > 256 {
		return nil, errors.New("rc4: key must be 1 to 256 bytes")
	}
	c := &Cipher{}
	for i := 0; i < 256; i++ {
		c.s[i] = byte(i)
	}
	var j byte
	for i := 0; i < 256; i++ {
		j += c.s[i] + key[i%len(key)]
		c.s[i], c.s[j] = c.s[j], c.s[i]
	}
	return c, nil
}

// XORKeyStream XORs src with the keystream into dst (which may be
// src). Each keystream byte costs three state-table reads and two
// writes — the paper's "read 3 times and updated twice".
func (c *Cipher) XORKeyStream(dst, src []byte) {
	i, j := c.i, c.j
	for k, b := range src {
		i++
		j += c.s[i]
		c.s[i], c.s[j] = c.s[j], c.s[i]
		dst[k] = b ^ c.s[c.s[i]+c.s[j]]
	}
	c.i, c.j = i, j
}

// Characteristics returns the Table 4 row for RC4.
func Characteristics() cipherinfo.Characteristics {
	return cipherinfo.Characteristics{
		Name:        "RC4",
		BlockBits:   8,
		KeyBits:     "128",
		KeySchedule: "n/a",
		Tables:      "1,256,8b",
		Rounds:      "1",
		Lookups:     3,
	}
}

// TraceKeySetup emits the abstract operations of the RC4 key schedule
// into tr: 256 iterations of table read/accumulate/swap.
func TraceKeySetup(tr *perf.Trace) {
	const n = 256
	tr.Emit(perf.OpStore, n)    // identity fill
	tr.Emit(perf.OpLookup, 2*n) // s[i], key[i%len]
	tr.Emit(perf.OpAdd, 2*n)
	tr.Emit(perf.OpAnd, n)     // index wrap
	tr.Emit(perf.OpStore, 2*n) // swap writes
	tr.Emit(perf.OpLoad, n)
	tr.Emit(perf.OpBranch, n)
	tr.Emit(perf.OpCmp, n)
}

// TraceKeystream emits the abstract operations of generating n
// keystream bytes into tr. Per byte: 3 table reads, 2 writes, index
// arithmetic (adds + masks), the output XOR, and a load/store for the
// data byte — the AND/ADD/XOR + mov mix of the paper's Table 12.
func TraceKeystream(tr *perf.Trace, n uint64) {
	tr.Emit(perf.OpLookup, 3*n)
	tr.Emit(perf.OpStore, 2*n)
	tr.Emit(perf.OpAdd, 3*n)
	tr.Emit(perf.OpAnd, 3*n) // byte-index wraps
	tr.Emit(perf.OpXor, n)
	tr.Emit(perf.OpLoad, n)
	tr.Emit(perf.OpStore, n)
	tr.Emit(perf.OpAdd, n) // loop counter
	tr.Emit(perf.OpCmp, n)
	tr.Emit(perf.OpBranch, n)
	tr.Bytes += n
}
