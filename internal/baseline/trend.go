package baseline

import "sort"

// A TrendSeries is one (result, metric) pair's value across a bench's
// archived runs, oldest first, ending at the committed report — the
// data behind `benchjson -trend`'s sparkline tables.
type TrendSeries struct {
	Result string
	Metric string
	// Values holds one point per report that carried the metric,
	// oldest archive first, the committed report last.
	Values []float64
}

// First and Last bound the series (zero for an empty one).
func (s TrendSeries) First() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Values[0]
}

func (s TrendSeries) Last() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Values[len(s.Values)-1]
}

// DeltaPct is the relative change from first to last in percent (0
// when the first point is zero).
func (s TrendSeries) DeltaPct() float64 {
	if len(s.Values) < 2 || s.Values[0] == 0 {
		return 0
	}
	return 100 * (s.Last() - s.First()) / s.First()
}

// Trends folds a bench's archived reports plus its committed report
// into per-metric series (Trend, above, is the pairwise DriftReport
// walk; this is the raw values for rendering). The committed report's
// result/metric set decides what is tracked (a metric dropped from
// the committed report is no longer a series); archives missing a
// metric simply contribute no point. Series are ordered by result
// name then metric name.
func Trends(history []*Report, committed *Report) []TrendSeries {
	if committed == nil {
		return nil
	}
	var out []TrendSeries
	for _, result := range committed.SortedResults() {
		br := committed.Results[result]
		metrics := make([]string, 0, len(br.Metrics))
		for m := range br.Metrics {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, metric := range metrics {
			s := TrendSeries{Result: result, Metric: metric}
			for _, rep := range history {
				if v, ok := rep.Metric(result, metric); ok {
					s.Values = append(s.Values, v)
				}
			}
			s.Values = append(s.Values, br.Metrics[metric])
			out = append(out, s)
		}
	}
	return out
}
