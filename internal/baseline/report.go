// Package baseline is the drift engine that closes the paper's
// measurement loop: it loads the committed docs/BENCH_*.json reports,
// compares fresh numbers against them within noise tolerances,
// validates each report against the expectation shapes the paper's
// tables predict (batch amortization rises with width, sealing stays
// allocation-free, sampling overhead stays marginal), and folds the
// live anatomy profiler's Table 2/3 shares through the same
// expectations so a server can answer "is the RSA step still ~90% of
// the handshake?" continuously at /debug/health.
package baseline

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A BenchResult is one benchmark's averaged metrics — one entry of a
// BENCH_*.json results map. Metrics are keyed by go-test unit names
// (ns/op, B/op, allocs/op, decrypts/s, p99_us, ...).
type BenchResult struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
	Speedup    float64            `json:"speedup,omitempty"`
}

// A Report is the machine-readable result file cmd/benchjson and
// cmd/sslload write and `make checkdrift` gates on — the committed
// docs/BENCH_*.json shape.
type Report struct {
	Bench   string                  `json:"bench"`
	Date    string                  `json:"date"`
	Machine string                  `json:"machine"`
	Command string                  `json:"command"`
	Note    string                  `json:"note,omitempty"`
	Results map[string]*BenchResult `json:"results"`
}

// Metric returns a result's metric value, with ok reporting whether
// both the result and the metric exist.
func (r *Report) Metric(result, metric string) (float64, bool) {
	br := r.Results[result]
	if br == nil {
		return 0, false
	}
	v, ok := br.Metrics[metric]
	return v, ok
}

// SortedResults returns the report's result names sorted, for stable
// iteration.
func (r *Report) SortedResults() []string {
	names := make([]string, 0, len(r.Results))
	for name := range r.Results {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Load reads one report file.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Bench == "" {
		return nil, fmt.Errorf("%s: not a benchmark report (no \"bench\" field)", path)
	}
	return &r, nil
}

// Write marshals the report to path as indented JSON.
func (r *Report) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Committed returns every BENCH_*.json report under dir (the docs/
// directory), sorted by path.
func Committed(dir string) (paths []string, reports []*Report, err error) {
	paths, err = filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(paths)
	for _, p := range paths {
		r, err := Load(p)
		if err != nil {
			return nil, nil, err
		}
		reports = append(reports, r)
	}
	return paths, reports, nil
}

// HistoryDir is the archive `make bench` copies each refreshed report
// into, named <base>-<timestamp>.json, so drift can be read as a
// trend instead of last-vs-committed only.
const HistoryDir = "bench_history"

// History returns the archived reports for one bench name under
// historyDir, oldest-first (timestamps in the filenames sort
// lexicographically). A missing directory is an empty history, not an
// error.
func History(historyDir, bench string) (paths []string, reports []*Report, err error) {
	entries, err := filepath.Glob(filepath.Join(historyDir, "*.json"))
	if err != nil || len(entries) == 0 {
		return nil, nil, nil
	}
	sort.Strings(entries)
	for _, p := range entries {
		r, err := Load(p)
		if err != nil {
			// Skip foreign files rather than failing the gate on them.
			continue
		}
		if r.Bench == bench {
			paths = append(paths, p)
			reports = append(reports, r)
		}
	}
	return paths, reports, nil
}

// Machine describes the host a report's numbers were taken on, so
// every report writer (cmd/benchjson, cmd/sslload) labels runs alike.
func Machine() string {
	desc := fmt.Sprintf("%s/%s, %s", runtime.GOOS, runtime.GOARCH, runtime.Version())
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(line, "model name") {
				if _, model, ok := strings.Cut(line, ":"); ok {
					return strings.TrimSpace(model) + ", " + desc
				}
			}
		}
	}
	return desc
}

// lowerIsBetter classifies a metric's direction: rate metrics
// (anything/s) and speedups improve upward, everything else — times,
// bytes, allocations, latency quantiles — improves downward.
func lowerIsBetter(metric string) bool {
	if strings.HasSuffix(metric, "/s") || metric == "speedup" {
		return false
	}
	return true
}
