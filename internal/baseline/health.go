package baseline

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"sslperf/internal/debughttp"
	"sslperf/internal/probe"
	"sslperf/internal/slo"
	"sslperf/internal/trace"
)

// Health statuses. NoData means the profiler has not folded enough
// handshakes yet to judge; it maps to HTTP 200 so a freshly started
// server is not "unhealthy".
const (
	StatusOK       = "OK"
	StatusDrifting = "DRIFTING"
	StatusNoData   = "NO_DATA"
)

// AnatomyExpectation is the paper's Table 2/3 shape as live bounds:
// which step must dominate the handshake and by how much, and how
// crypto-heavy the whole must stay. The live anatomy profiler's
// snapshot is folded through these continuously at /debug/health.
type AnatomyExpectation struct {
	// MinHandshakes is how many folded handshakes the verdict needs;
	// below it the report says NO_DATA instead of guessing.
	MinHandshakes uint64 `json:"min_handshakes"`

	// DominantStep must hold the largest per-step share (Table 2's
	// get_client_kx — the RSA private decryption) with at least
	// MinDominantStepPct of total step time. The paper measures 92%,
	// we measure ~94; the floor is generous so legitimate workload
	// mix (resumption, DHE) does not page anyone, while a broken or
	// bypassed RSA path trips immediately.
	DominantStep       string  `json:"dominant_step"`
	MinDominantStepPct float64 `json:"min_dominant_step_pct"`

	// MinCryptoPct floors total crypto share of handshake time —
	// Table 3's "total crypto operations" row (paper 95.0%, measured
	// 87.4%).
	MinCryptoPct float64 `json:"min_crypto_pct"`

	// DominantCategory must be the largest Table 3 category with at
	// least MinDominantCategoryPct (paper: public key encryption at
	// 90.4%, measured 82.2%).
	DominantCategory       string  `json:"dominant_category"`
	MinDominantCategoryPct float64 `json:"min_dominant_category_pct"`

	// Bulk is the bulk-path half of the expectation: Tables 11/12's
	// per-byte orderings. It gates offline via `make checkdrift`
	// against docs/BENCH_bulk.json (the "bulk-path" shape) rather
	// than live at /debug/health, since cycles/byte needs a sustained
	// transfer to mean anything.
	Bulk BulkExpectation `json:"bulk"`
}

// BulkExpectation pins the paper's Table 11/12 per-byte cost
// orderings for the bulk data path.
type BulkExpectation struct {
	// CheapCipher must cost fewer cycles/byte than CostlyCipher
	// (Table 11: RC4 is the cheapest symmetric cipher, well under
	// AES), and CheapMAC fewer than CostlyMAC (Table 12: MD5 under
	// SHA-1).
	CheapCipher  string `json:"cheap_cipher"`
	CostlyCipher string `json:"costly_cipher"`
	CheapMAC     string `json:"cheap_mac"`
	CostlyMAC    string `json:"costly_mac"`

	// MinTripleDESRatio floors 3DES/DES cycles-per-byte: three
	// passes should cost ~3x one, so a ratio near 1 means the triple
	// path collapsed.
	MinTripleDESRatio float64 `json:"min_3des_des_ratio"`

	// MaxWritesPerRecord caps transport writes per sealed record on
	// every bulk result that reports the metric. The legacy path's
	// header+body pair cost 2; the contiguous seal costs 1; the
	// vectored flight path a fraction of 1. Anything above the cap
	// means the two-syscalls-per-record bug is back.
	MaxWritesPerRecord float64 `json:"max_writes_per_record"`

	// MinVectoredSpeedup floors each "-vec" result's MB/s against its
	// matching "-seq1m" result (same suite, same 1 MiB write size,
	// flight path off): the flight-coalesced vectored path must move
	// at least this multiple of the sequential record-at-a-time
	// throughput, or the pipeline is costing more than it saves. Set
	// slightly under 1 so single-core hosts — where MAC lanes cannot
	// physically overlap and block ciphers measure dead even — pass
	// within benchmark noise.
	MinVectoredSpeedup float64 `json:"min_vectored_speedup"`
}

// PaperExpectation returns the default expectation derived from the
// paper's Tables 2 and 3 with tolerant floors.
func PaperExpectation() AnatomyExpectation {
	return AnatomyExpectation{
		MinHandshakes:          8,
		DominantStep:           probe.StepGetClientKX.Name(),
		MinDominantStepPct:     50,
		MinCryptoPct:           60,
		DominantCategory:       probe.CategoryPublic,
		MinDominantCategoryPct: 50,
		Bulk: BulkExpectation{
			CheapCipher:       "RC4",
			CostlyCipher:      "AES",
			CheapMAC:          "MD5",
			CostlyMAC:         "SHA-1",
			MinTripleDESRatio: 1.8,
			// One contiguous write per record at most; the vectored
			// path must at least match the sequential throughput at
			// the same write size, within single-core noise.
			MaxWritesPerRecord: 1.0,
			MinVectoredSpeedup: 0.95,
		},
	}
}

// A HealthCheck is one expectation's live verdict. Unit annotates
// Value in the text rendering; empty means percent (the anatomy
// shares), the SLO burn check uses "x" (a budget multiplier).
type HealthCheck struct {
	Name   string  `json:"name"`
	Status string  `json:"status"`
	Value  float64 `json:"value"`
	Unit   string  `json:"unit,omitempty"`
	Want   string  `json:"want"`
	Detail string  `json:"detail,omitempty"`
}

// A HealthReport is the /debug/health body: the overall verdict plus
// each check's share-vs-floor reading.
type HealthReport struct {
	At         time.Time     `json:"at"`
	Status     string        `json:"status"`
	Handshakes uint64        `json:"handshakes"`
	Traces     uint64        `json:"traces"`
	Checks     []HealthCheck `json:"checks,omitempty"`
}

// Text renders the report as a terse human-readable block.
func (h HealthReport) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (%d handshakes folded)\n", h.Status, h.Handshakes)
	for _, c := range h.Checks {
		unit := c.Unit
		if unit == "" {
			unit = "%"
		}
		fmt.Fprintf(&sb, "  %-8s %-18s %6.2f%s  want %s", c.Status, c.Name, c.Value, unit, c.Want)
		if c.Detail != "" {
			fmt.Fprintf(&sb, "  (%s)", c.Detail)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CheckAnatomy folds a live anatomy snapshot through the expectation:
// the paper's "is libcrypto still ~70% / is the RSA step still
// dominant?" question answered against whatever traffic the profiler
// has sampled.
func CheckAnatomy(snap trace.AnatomySnapshot, exp AnatomyExpectation) HealthReport {
	rep := HealthReport{
		At:         snap.At,
		Handshakes: snap.Handshakes,
		Traces:     snap.Traces,
	}
	if snap.Handshakes < exp.MinHandshakes {
		rep.Status = StatusNoData
		return rep
	}

	check := func(name string, value, floor float64, want, detail string) {
		c := HealthCheck{Name: name, Status: StatusOK, Value: value, Want: want, Detail: detail}
		if value < floor {
			c.Status = StatusDrifting
		}
		rep.Checks = append(rep.Checks, c)
	}

	// Dominant handshake step (Table 2).
	var topStep string
	var topStepPct, wantStepPct float64
	for _, st := range snap.Steps {
		if st.SharePct > topStepPct {
			topStep, topStepPct = st.Name, st.SharePct
		}
		if st.Name == exp.DominantStep {
			wantStepPct = st.SharePct
		}
	}
	detail := ""
	if topStep != exp.DominantStep {
		detail = fmt.Sprintf("dominated by %s at %.2f%% instead", topStep, topStepPct)
	}
	check("dominant_step:"+exp.DominantStep, wantStepPct, exp.MinDominantStepPct,
		fmt.Sprintf(">= %.0f%% and largest", exp.MinDominantStepPct), detail)
	if topStep != exp.DominantStep {
		// Above the floor or not, a usurped ordering is drift.
		rep.Checks[len(rep.Checks)-1].Status = StatusDrifting
	}

	// Total crypto share (Table 3's bottom row).
	check("crypto_share", snap.CryptoSharePct, exp.MinCryptoPct,
		fmt.Sprintf(">= %.0f%%", exp.MinCryptoPct), "")

	// Dominant crypto category (Table 3).
	var topCat string
	var topCatPct, wantCatPct float64
	for _, c := range snap.Categories {
		if c.SharePct > topCatPct {
			topCat, topCatPct = c.Name, c.SharePct
		}
		if c.Name == exp.DominantCategory {
			wantCatPct = c.SharePct
		}
	}
	detail = ""
	if topCat != exp.DominantCategory {
		detail = fmt.Sprintf("dominated by %q at %.2f%% instead", topCat, topCatPct)
	}
	check("dominant_category:"+strings.ReplaceAll(exp.DominantCategory, " ", "_"),
		wantCatPct, exp.MinDominantCategoryPct,
		fmt.Sprintf(">= %.0f%% and largest", exp.MinDominantCategoryPct), detail)
	if topCat != exp.DominantCategory {
		rep.Checks[len(rep.Checks)-1].Status = StatusDrifting
	}

	rep.Status = StatusOK
	for _, c := range rep.Checks {
		if c.Status == StatusDrifting {
			rep.Status = StatusDrifting
			break
		}
	}
	return rep
}

// SLOBurnCheck adapts one SLO window's burn rate into a /debug/health
// check: DRIFTING when the window is burning its error budget faster
// than maxBurn, NO_DATA while the window is empty. Pass it to
// RegisterHealth as an extra check to fold the SLO verdict into the
// anatomy gate.
func SLOBurnCheck(t *slo.Tracker, window string, maxBurn float64) func() HealthCheck {
	return func() HealthCheck {
		ws := t.Snapshot().Window(window)
		c := HealthCheck{
			Name:   "slo_burn:" + window,
			Status: StatusOK,
			Value:  ws.BurnRate,
			Unit:   "x",
			Want:   fmt.Sprintf("<= %.1fx budget", maxBurn),
		}
		if ws.Handshakes == 0 {
			c.Status = StatusNoData
			return c
		}
		if ws.BurnRate > maxBurn {
			c.Status = StatusDrifting
			c.Detail = fmt.Sprintf("%d of %d handshakes bad (failed %d, slow %d)",
				ws.Failed+ws.Slow, ws.Handshakes, ws.Failed, ws.Slow)
		}
		return c
	}
}

// RegisterHealth mounts /debug/health on mux, folding each request's
// fresh anatomy snapshot through exp. DRIFTING answers 503 so a plain
// curl -f (or a load balancer) can gate on it; OK and NO_DATA answer
// 200. ?format=text renders the terse table.
//
// Extra checks (e.g. the SLO burn-rate fold from internal/slo) are
// evaluated per request and appended to the report; a DRIFTING extra
// drifts the whole verdict even when the anatomy is clean. A nil
// snapshot skips the anatomy checks entirely — the endpoint then
// answers from the extras alone (a server run without tracing still
// gets its SLO verdict) and reads OK once any extra has data.
func RegisterHealth(mux *http.ServeMux, snapshot func() trace.AnatomySnapshot, exp AnatomyExpectation, extra ...func() HealthCheck) {
	mux.HandleFunc("/debug/health", func(w http.ResponseWriter, req *http.Request) {
		var rep HealthReport
		if snapshot != nil {
			rep = CheckAnatomy(snapshot(), exp)
		} else {
			rep = HealthReport{At: time.Now(), Status: StatusNoData}
		}
		for _, fn := range extra {
			c := fn()
			rep.Checks = append(rep.Checks, c)
			if c.Status == StatusDrifting && rep.Status != StatusDrifting {
				rep.Status = StatusDrifting
			}
			if snapshot == nil && c.Status == StatusOK && rep.Status == StatusNoData {
				rep.Status = StatusOK
			}
		}
		code := http.StatusOK
		if rep.Status == StatusDrifting {
			code = http.StatusServiceUnavailable
		}
		if debughttp.WantText(req) {
			debughttp.HeadText(w)
			w.WriteHeader(code)
			w.Write([]byte(rep.Text()))
			return
		}
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		debughttp.HeadJSON(w)
		w.WriteHeader(code)
		w.Write(b)
	})
}
