package baseline

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sslperf/internal/handshake"
	"sslperf/internal/trace"
)

// snap builds an anatomy snapshot with the given dominant-step,
// crypto and category shares.
func snap(handshakes uint64, kxShare, cryptoShare, publicShare float64) trace.AnatomySnapshot {
	rest := (100 - kxShare) / 2
	catRest := cryptoShare - publicShare
	return trace.AnatomySnapshot{
		At:         time.Now(),
		Traces:     handshakes,
		Handshakes: handshakes,
		Steps: []trace.AnatomyStep{
			{Name: "init", SharePct: rest},
			{Name: "get_client_kx", SharePct: kxShare},
			{Name: "send_finished", SharePct: rest},
		},
		Categories: []trace.AnatomyCategory{
			{Name: handshake.CategoryPublic, SharePct: publicShare},
			{Name: handshake.CategoryHash, SharePct: catRest},
		},
		CryptoSharePct: cryptoShare,
	}
}

func TestCheckAnatomyOK(t *testing.T) {
	rep := CheckAnatomy(snap(100, 94, 87, 82), PaperExpectation())
	if rep.Status != StatusOK {
		t.Fatalf("paper-shaped snapshot = %s:\n%s", rep.Status, rep.Text())
	}
	if len(rep.Checks) != 3 {
		t.Fatalf("%d checks, want 3", len(rep.Checks))
	}
}

func TestCheckAnatomyNoData(t *testing.T) {
	rep := CheckAnatomy(snap(2, 94, 87, 82), PaperExpectation())
	if rep.Status != StatusNoData {
		t.Fatalf("2 handshakes = %s, want NO_DATA", rep.Status)
	}
}

func TestCheckAnatomyDrifting(t *testing.T) {
	// RSA step collapsed to 30%: dominant-step check must drift.
	rep := CheckAnatomy(snap(100, 30, 87, 82), PaperExpectation())
	if rep.Status != StatusDrifting {
		t.Fatalf("collapsed kx = %s, want DRIFTING\n%s", rep.Status, rep.Text())
	}
	found := false
	for _, c := range rep.Checks {
		if strings.HasPrefix(c.Name, "dominant_step") && c.Status == StatusDrifting {
			found = true
		}
	}
	if !found {
		t.Fatalf("dominant_step not flagged:\n%s", rep.Text())
	}

	// Crypto share collapsed: crypto_share drifts even with ordering intact.
	rep = CheckAnatomy(snap(100, 94, 40, 35), PaperExpectation())
	if rep.Status != StatusDrifting {
		t.Fatalf("40%% crypto = %s, want DRIFTING", rep.Status)
	}
}

func TestCheckAnatomyUsurpedOrderingDrifts(t *testing.T) {
	// The expected step holds 55% (above the 50 floor) but another
	// step holds more — ordering itself is the signal.
	s := snap(100, 55, 87, 82)
	s.Steps[0].SharePct = 60 // init usurps
	rep := CheckAnatomy(s, PaperExpectation())
	if rep.Status != StatusDrifting {
		t.Fatalf("usurped ordering = %s, want DRIFTING\n%s", rep.Status, rep.Text())
	}
}

func TestHealthEndpoint(t *testing.T) {
	current := snap(100, 94, 87, 82)
	mux := http.NewServeMux()
	RegisterHealth(mux, func() trace.AnatomySnapshot { return current }, PaperExpectation())

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/health", nil))
	if rec.Code != 200 {
		t.Fatalf("healthy = %d", rec.Code)
	}
	var rep HealthReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Status != StatusOK || rep.Handshakes != 100 {
		t.Fatalf("body = %+v", rep)
	}

	// The endpoint snapshots live state: when the anatomy drifts, the
	// next poll flips to 503/DRIFTING.
	current = snap(100, 30, 87, 82)
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/health", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("drifting = %d, want 503", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Status != StatusDrifting {
		t.Fatalf("drifting body = %+v", rep)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/health?format=text", nil))
	if got := rec.Header().Get("Content-Type"); !strings.HasPrefix(got, "text/plain") {
		t.Fatalf("text Content-Type = %q", got)
	}
	if !strings.Contains(rec.Body.String(), StatusDrifting) {
		t.Fatalf("text body:\n%s", rec.Body.String())
	}
}

func TestHealthEndpointAgainstRealProfiler(t *testing.T) {
	// End-to-end through a real tracer: fold synthetic traces whose
	// step durations follow the paper's shape, then read health.
	tr := trace.NewTracer(trace.Config{})
	for i := 0; i < 10; i++ {
		ct := tr.ConnBegin(uint64(i), "server")
		add := func(name, cat string, d time.Duration) {
			ct.Event(name, cat, 0, time.Now(), d)
		}
		add("init", trace.CatStep, 20*time.Microsecond)
		add("get_client_kx", trace.CatStep, 3*time.Millisecond)
		add("send_finished", trace.CatStep, 30*time.Microsecond)
		add("rsa_private_decryption", trace.CatCrypto, 2900*time.Microsecond)
		add("final_finish_mac", trace.CatCrypto, 20*time.Microsecond)
		ct.Finish("ok")
	}
	mux := http.NewServeMux()
	RegisterHealth(mux, tr.Profiler().Snapshot, PaperExpectation())
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/health", nil))
	if rec.Code != 200 {
		t.Fatalf("real profiler health = %d:\n%s", rec.Code, rec.Body.String())
	}
	var rep HealthReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Status != StatusOK || rep.Handshakes != 10 {
		t.Fatalf("body = %+v", rep)
	}
}
