package baseline

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Tolerance bounds how far a fresh metric may regress from its
// baseline before the gate fails. Regressions are directional: a
// faster ns/op or a higher decrypts/s never fails, however large the
// delta.
type Tolerance struct {
	// RelPct is the allowed relative regression in percent (25 means
	// a metric may be up to 25% worse than the baseline).
	RelPct float64

	// Metric overrides RelPct per metric unit ("allocs/op": 0 pins
	// allocation counts exactly).
	Metric map[string]float64

	// Skip lists metric units the gate ignores entirely. B/op and
	// iteration counts are noisy across Go versions and machines;
	// the default tolerance skips nothing.
	Skip []string
}

// DefaultTolerance is the checkdrift gate's default: 25% relative on
// every metric — wide enough for shared-hardware noise on timing
// metrics, tight enough to catch a real regression in decrypts/s,
// record seal ns/op, or handshake cycles — with allocation counts
// held to 10% (they are near-deterministic).
func DefaultTolerance() Tolerance {
	return Tolerance{
		RelPct: 25,
		Metric: map[string]float64{"allocs/op": 10},
	}
}

// limit returns the allowed regression percentage for a metric and
// whether the metric participates at all.
func (t Tolerance) limit(metric string) (float64, bool) {
	for _, s := range t.Skip {
		if s == metric {
			return 0, false
		}
	}
	if t.Metric != nil {
		if v, ok := t.Metric[metric]; ok {
			return v, true
		}
	}
	return t.RelPct, true
}

// A Delta is one metric's baseline-vs-fresh comparison.
type Delta struct {
	Result string  `json:"result"`
	Metric string  `json:"metric"`
	Base   float64 `json:"base"`
	New    float64 `json:"new"`
	// Pct is the signed relative change; positive means regressed
	// (worse in the metric's direction), negative means improved.
	Pct       float64 `json:"pct"`
	BeyondTol bool    `json:"beyond_tolerance"`
}

func (d Delta) String() string {
	verb := "improved"
	if d.Pct > 0 {
		verb = "regressed"
	}
	return fmt.Sprintf("%s %s: %.3f -> %.3f (%s %.1f%%)",
		d.Result, d.Metric, d.Base, d.New, verb, math.Abs(d.Pct))
}

// A DriftReport is the outcome of comparing a fresh report against
// its baseline.
type DriftReport struct {
	Bench    string   `json:"bench"`
	Failures []Delta  `json:"failures,omitempty"` // regressions beyond tolerance
	Deltas   []Delta  `json:"deltas,omitempty"`   // every compared metric
	Missing  []string `json:"missing,omitempty"`  // baseline results absent from the fresh run
}

// Failed reports whether the gate should reject the fresh run.
func (d *DriftReport) Failed() bool {
	return len(d.Failures) > 0 || len(d.Missing) > 0
}

// Summary renders the drift report as one human-readable block, one
// line per finding; failures lead.
func (d *DriftReport) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d metrics compared, %d beyond tolerance, %d missing\n",
		d.Bench, len(d.Deltas), len(d.Failures), len(d.Missing))
	for _, f := range d.Failures {
		fmt.Fprintf(&sb, "  FAIL %s\n", f)
	}
	for _, m := range d.Missing {
		fmt.Fprintf(&sb, "  FAIL %s: in baseline but not in fresh run\n", m)
	}
	return sb.String()
}

// Compare checks a fresh report against its baseline. Every metric
// present in both is compared; only regressions beyond tol (and
// results that vanished) count as failures. Metrics or results that
// are new in fresh pass — growth is not drift.
func Compare(base, fresh *Report, tol Tolerance) *DriftReport {
	d := &DriftReport{Bench: base.Bench}
	for _, result := range base.SortedResults() {
		br := base.Results[result]
		fr := fresh.Results[result]
		if fr == nil {
			d.Missing = append(d.Missing, result)
			continue
		}
		metrics := make([]string, 0, len(br.Metrics))
		for m := range br.Metrics {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, metric := range metrics {
			bv := br.Metrics[metric]
			nv, ok := fr.Metrics[metric]
			if !ok {
				continue
			}
			limit, active := tol.limit(metric)
			if !active {
				continue
			}
			delta := Delta{Result: result, Metric: metric, Base: bv, New: nv}
			switch {
			case bv == 0 && nv == 0:
				// nothing to say
			case bv == 0:
				// Appearing from zero: regressed if lower is better
				// (e.g. allocs going 0 -> 2), improved otherwise.
				if lowerIsBetter(metric) {
					delta.Pct = math.Inf(1)
					delta.BeyondTol = true
				} else {
					delta.Pct = math.Inf(-1)
				}
			default:
				rel := 100 * (nv - bv) / bv
				if !lowerIsBetter(metric) {
					rel = -rel
				}
				delta.Pct = rel
				delta.BeyondTol = rel > limit
			}
			d.Deltas = append(d.Deltas, delta)
			if delta.BeyondTol {
				d.Failures = append(d.Failures, delta)
			}
		}
	}
	return d
}

// Trend compares each consecutive pair of an archived history plus
// the current report, returning one DriftReport per step. It answers
// "how did we get here", not "should the gate fail": callers usually
// only gate on the last step.
func Trend(history []*Report, current *Report, tol Tolerance) []*DriftReport {
	var out []*DriftReport
	seq := append(append([]*Report(nil), history...), current)
	for i := 1; i < len(seq); i++ {
		out = append(out, Compare(seq[i-1], seq[i], tol))
	}
	return out
}
