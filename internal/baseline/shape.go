package baseline

import (
	"fmt"
	"strings"
)

// A Violation is one broken expectation shape: a named check, the
// metric that broke it, and how far off it is.
type Violation struct {
	Check  string `json:"check"`
	Detail string `json:"detail"`
}

func (v Violation) String() string { return v.Check + ": " + v.Detail }

// CheckShape validates a report against the expectation shape the
// paper (and our committed results) predict for that bench. Shapes
// are recomputed from the raw metrics — never read from derived
// fields like "speedup" — so a perturbed metric cannot hide behind a
// stale ratio. An unknown bench name has no registered expectations
// and passes vacuously (with ok=false so callers can report "skipped").
func CheckShape(r *Report) (violations []Violation, known bool) {
	switch r.Bench {
	case "rsa-batch-amortization":
		return checkBatchShape(r), true
	case "record-seal-allocs":
		return checkRecordShape(r), true
	case "trace-overhead":
		return checkTraceShape(r), true
	case "probe-overhead":
		return checkProbeShape(r), true
	case "load-latency":
		return checkLoadShape(r), true
	case "bulk-path":
		return checkBulkShape(r), true
	case "lifecycle-conn-table":
		return checkLifecycleShape(r), true
	case "history-sampler":
		return checkHistoryShape(r), true
	case "nonblock":
		return checkNonblockShape(r), true
	}
	return nil, false
}

// checkNonblockShape pins the sans-IO core's two claims. First, the
// economics: an idle event-loop connection (a NonBlockingConn and its
// buffers) must pin strictly less memory than an idle goroutine-per-
// conn connection (blocking Conn plus the goroutine parked in Read) —
// that gap is the whole point of the refactor. Second, the costs that
// must not appear: the steady-state non-blocking read path stays at
// zero allocations per round trip, and driving the handshake FSM by
// explicit steps must not be materially slower than the blocking
// wrapper driving the very same FSM (the shuttle replaces goroutine
// hand-offs, not crypto, so 1.5x is already generous).
func checkNonblockShape(r *Report) []Violation {
	var out []Violation
	el, okEL := r.Metric("IdleConns/eventloop", "bytes/conn")
	gr, okGR := r.Metric("IdleConns/goroutine", "bytes/conn")
	switch {
	case !okEL:
		out = append(out, Violation{"nonblock-idle", "IdleConns/eventloop bytes/conn missing"})
	case !okGR:
		out = append(out, Violation{"nonblock-idle", "IdleConns/goroutine bytes/conn missing"})
	case el <= 0 || gr <= 0:
		out = append(out, Violation{"nonblock-idle",
			fmt.Sprintf("non-positive bytes/conn (eventloop %.0f, goroutine %.0f) — GC settled mid-measure?", el, gr)})
	case el >= gr:
		out = append(out, Violation{"nonblock-idle",
			fmt.Sprintf("idle event-loop conn %.0f bytes/conn not below goroutine conn %.0f (the sans-IO core lost its memory advantage)", el, gr)})
	}

	if allocs, ok := r.Metric("NonBlockReadSteady", "allocs/op"); !ok {
		out = append(out, Violation{"nonblock-read-allocs", "NonBlockReadSteady allocs/op missing"})
	} else if allocs > 0 {
		out = append(out, Violation{"nonblock-read-allocs",
			fmt.Sprintf("steady-state read path allocs/op %.1f, want 0 (core buffer reuse regressed)", allocs)})
	}

	nb, okNB := r.Metric("NonBlockHandshake", "ns/op")
	bl, okBL := r.Metric("GoroutinePerConnHandshake", "ns/op")
	switch {
	case !okNB || nb <= 0:
		out = append(out, Violation{"nonblock-handshake", "NonBlockHandshake has no ns/op metric"})
	case !okBL || bl <= 0:
		out = append(out, Violation{"nonblock-handshake", "GoroutinePerConnHandshake has no ns/op metric"})
	case nb > 1.5*bl:
		out = append(out, Violation{"nonblock-handshake",
			fmt.Sprintf("stepped FSM handshake ns/op %.0f is %.2fx the blocking path's %.0f, want <= 1.5x", nb, nb/bl, bl)})
	}
	return out
}

// historySamplerMaxNs caps one full history tick at 1% of the default
// 1s sampling interval: the observatory must stay invisible next to
// the work it observes.
const historySamplerMaxNs = 10e6

// checkHistoryShape pins the time-series sampler's cost: one tick over
// every standard source (telemetry counters, runtime metrics, SLO
// window fold, conn-table walk, pathlen totals, anatomy shares) must
// allocate nothing in steady state and finish in well under 1% of a
// CPU at the 1s default resolution. Allocations mean a source's
// accessor regressed onto a Snapshot()-style rendering path.
func checkHistoryShape(r *Report) []Violation {
	var out []Violation
	var seen int
	for _, name := range r.SortedResults() {
		if !strings.HasPrefix(name, "HistorySample") {
			continue
		}
		allocs, ok := r.Metric(name, "allocs/op")
		if !ok {
			continue
		}
		seen++
		if allocs > 0 {
			out = append(out, Violation{"history-allocs",
				fmt.Sprintf("%s allocs/op %.1f, want 0 (a source accessor is allocating on the tick path)", name, allocs)})
		}
		if ns, ok := r.Metric(name, "ns/op"); ok && ns > historySamplerMaxNs {
			out = append(out, Violation{"history-tick-cost",
				fmt.Sprintf("%s ns/op %.0f, want <= %.0f (1%% of the 1s sampling interval)", name, ns, float64(historySamplerMaxNs))})
		}
	}
	if seen == 0 {
		out = append(out, Violation{"history-results", "no HistorySample results with allocs/op found"})
	}
	return out
}

// checkLifecycleShape pins the conn-table hot path at zero
// allocations per operation: register/transition/close recycle pooled
// entries and reuse shard-map slots, so the lifecycle observatory can
// ride every production connection without generating garbage. Any
// ConnTable result allocating means the pool or the fixed-size
// timeline regressed.
func checkLifecycleShape(r *Report) []Violation {
	var out []Violation
	var seen int
	for _, name := range r.SortedResults() {
		if !strings.HasPrefix(name, "ConnTable/") {
			continue
		}
		allocs, ok := r.Metric(name, "allocs/op")
		if !ok {
			continue
		}
		seen++
		if allocs > 0 {
			out = append(out, Violation{"lifecycle-allocs",
				fmt.Sprintf("%s allocs/op %.1f, want 0 (entry pool or fixed timeline regressed)", name, allocs)})
		}
	}
	if seen == 0 {
		out = append(out, Violation{"lifecycle-results", "no ConnTable/* results with allocs/op found"})
	}
	return out
}

// checkBulkShape pins the bulk-path orderings of the paper's Tables
// 11/12 on the live cycles/byte fold, per PaperExpectation().Bulk:
// RC4 must stay cheaper per byte than AES, MD5 cheaper than SHA-1
// per MAC byte, and 3DES must cost a multiple of single DES. Values
// come from the pathlen collector's cipher-cyc/B and mac-cyc/B
// metrics in BENCH_bulk.json. It also pins the flight path's syscall
// story: no bulk result may exceed MaxWritesPerRecord transport
// writes per sealed record, and each "-vec" (flight-coalesced) result
// must hold MinVectoredSpeedup times its "-seq1m" (same write size,
// flight disabled) counterpart's MB/s.
func checkBulkShape(r *Report) []Violation {
	var out []Violation
	exp := PaperExpectation().Bulk
	cipher := func(result string) (float64, bool) {
		return r.Metric("BulkPath/"+result, "cipher-cyc/B")
	}
	mac := func(result string) (float64, bool) {
		return r.Metric("BulkPath/"+result, "mac-cyc/B")
	}

	rc4, okRC4 := cipher("RC4-MD5")
	aes, okAES := cipher("AES128-SHA")
	des, okDES := cipher("DES-CBC-SHA")
	tdes, okTDES := cipher("DES-CBC3-SHA")
	md5, okMD5 := mac("RC4-MD5")
	sha, okSHA := mac("RC4-SHA")

	for _, m := range []struct {
		ok   bool
		name string
	}{
		{okRC4, "BulkPath/RC4-MD5 cipher-cyc/B"},
		{okAES, "BulkPath/AES128-SHA cipher-cyc/B"},
		{okDES, "BulkPath/DES-CBC-SHA cipher-cyc/B"},
		{okTDES, "BulkPath/DES-CBC3-SHA cipher-cyc/B"},
		{okMD5, "BulkPath/RC4-MD5 mac-cyc/B"},
		{okSHA, "BulkPath/RC4-SHA mac-cyc/B"},
	} {
		if !m.ok {
			out = append(out, Violation{"bulk-metrics", m.name + " missing"})
		}
	}
	if len(out) > 0 {
		return out
	}

	positive := func(name string, v float64) {
		if v <= 0 {
			out = append(out, Violation{"bulk-positive",
				fmt.Sprintf("%s cycles/byte %.3f, want > 0 (collector saw no bytes?)", name, v)})
		}
	}
	positive("RC4", rc4)
	positive("AES", aes)
	positive("DES", des)
	positive("3DES", tdes)
	positive("MD5", md5)
	positive("SHA-1", sha)
	if len(out) > 0 {
		return out
	}

	if rc4 >= aes {
		out = append(out, Violation{"bulk-cipher-order",
			fmt.Sprintf("%s %.2f cyc/B not cheaper than %s %.2f (Table 11 ordering inverted)",
				exp.CheapCipher, rc4, exp.CostlyCipher, aes)})
	}
	if md5 >= sha {
		out = append(out, Violation{"bulk-mac-order",
			fmt.Sprintf("%s %.2f mac-cyc/B not cheaper than %s %.2f (Table 12 ordering inverted)",
				exp.CheapMAC, md5, exp.CostlyMAC, sha)})
	}
	// 3DES is three DES passes; allow generous slack around 3x but a
	// ratio near 1 means the triple path degenerated to single DES.
	if ratio := tdes / des; ratio < exp.MinTripleDESRatio {
		out = append(out, Violation{"bulk-3des-ratio",
			fmt.Sprintf("3DES/DES cycles-per-byte ratio %.2f, want >= %.1f (triple pass collapsed?)",
				ratio, exp.MinTripleDESRatio)})
	}

	// Syscall story: every result reporting writes/record stays at or
	// under the contiguous-seal cost (2 would mean the legacy
	// header+body pair is back).
	if exp.MaxWritesPerRecord > 0 {
		for _, name := range r.SortedResults() {
			if !strings.HasPrefix(name, "BulkPath/") {
				continue
			}
			if wpr, ok := r.Metric(name, "writes/record"); ok && wpr > exp.MaxWritesPerRecord {
				out = append(out, Violation{"bulk-writes-per-record",
					fmt.Sprintf("%s writes/record %.3f, want <= %.1f (legacy two-syscall seal back?)",
						name, wpr, exp.MaxWritesPerRecord)})
			}
		}
	}

	// Vectored flight path: for each suite benched both ways at the
	// same 1 MiB write size, the flight-coalesced path must hold its
	// throughput floor against the record-at-a-time baseline, and its
	// windowed flush must show up as fewer than one write per record.
	// A missing half of a pair is a violation — dropping the "-vec"
	// results would silently retire this gate.
	if exp.MinVectoredSpeedup > 0 {
		for _, s := range []string{"RC4-MD5", "AES128-SHA"} {
			seq, okSeq := r.Metric("BulkPath/"+s+"-seq1m", "MB/s")
			vec, okVec := r.Metric("BulkPath/"+s+"-vec", "MB/s")
			if !okSeq || seq <= 0 {
				out = append(out, Violation{"bulk-vectored",
					fmt.Sprintf("BulkPath/%s-seq1m MB/s missing (vectored gate has no baseline)", s)})
				continue
			}
			if !okVec || vec <= 0 {
				out = append(out, Violation{"bulk-vectored",
					fmt.Sprintf("BulkPath/%s-vec MB/s missing (flight path not benched?)", s)})
				continue
			}
			if vec < exp.MinVectoredSpeedup*seq {
				out = append(out, Violation{"bulk-vectored",
					fmt.Sprintf("%s vectored %.1f MB/s under %.2fx of sequential %.1f MB/s (flight pipeline costing more than it saves)",
						s, vec, exp.MinVectoredSpeedup, seq)})
			}
			if wpr, ok := r.Metric("BulkPath/"+s+"-vec", "writes/record"); ok && wpr >= 1 {
				out = append(out, Violation{"bulk-vectored",
					fmt.Sprintf("BulkPath/%s-vec writes/record %.3f, want < 1 (flight flush not coalescing)", s, wpr)})
			}
		}
	}
	return out
}

// checkBatchShape encodes the paper's batch-RSA claim (and Pateriya
// et al.'s server evaluation): amortizing the ClientKeyExchange
// decryption over a batch must beat the singleton path, and wider
// batches must not fall back below narrower ones' floor.
func checkBatchShape(r *Report) []Violation {
	var out []Violation
	base, ok := r.Metric("BatchDecrypt/batch=1", "decrypts/s")
	if !ok || base <= 0 {
		return []Violation{{"batch-baseline", "BatchDecrypt/batch=1 has no decrypts/s metric"}}
	}
	speedup := func(n int) (float64, bool) {
		v, ok := r.Metric(fmt.Sprintf("BatchDecrypt/batch=%d", n), "decrypts/s")
		if !ok {
			return 0, false
		}
		return v / base, true
	}
	prev := 1.0
	for _, n := range []int{2, 4, 8} {
		s, ok := speedup(n)
		if !ok {
			out = append(out, Violation{"batch-curve",
				fmt.Sprintf("BatchDecrypt/batch=%d missing decrypts/s", n)})
			continue
		}
		if s < 1.15 {
			out = append(out, Violation{"batch-amortization",
				fmt.Sprintf("batch=%d decrypts/s speedup %.2fx over batch=1, want >= 1.15x", n, s)})
		}
		// Wider batches may plateau but must not collapse below ~80%
		// of the narrower width's gain.
		if s < 0.8*prev {
			out = append(out, Violation{"batch-monotonic",
				fmt.Sprintf("batch=%d speedup %.2fx fell below 80%% of batch=%d's %.2fx", n, s, n/2, prev)})
		}
		prev = s
	}
	return out
}

// checkRecordShape pins the record layer's pooled-buffer win: sealing
// stays at one amortized allocation per record, opening at most two.
func checkRecordShape(r *Report) []Violation {
	var out []Violation
	for _, name := range r.SortedResults() {
		allocs, ok := r.Metric(name, "allocs/op")
		if !ok {
			continue
		}
		var ceil float64
		switch {
		case strings.HasPrefix(name, "RecordSeal/"):
			ceil = 1
		case strings.HasPrefix(name, "RecordOpen/"):
			ceil = 2
		default:
			continue
		}
		if allocs > ceil {
			out = append(out, Violation{"record-allocs",
				fmt.Sprintf("%s allocs/op %.0f, want <= %.0f (pooled seal buffer regressed)", name, allocs, ceil)})
		}
	}
	return out
}

// checkTraceShape bounds span-tracing overhead against the untraced
// baseline: the production 1-in-16 sampling must stay marginal and
// even always-on tracing must stay under 2x.
func checkTraceShape(r *Report) []Violation {
	var out []Violation
	off, ok := r.Metric("HandshakeTraceOff", "ns/op")
	if !ok || off <= 0 {
		return []Violation{{"trace-baseline", "HandshakeTraceOff has no ns/op metric"}}
	}
	if v, ok := r.Metric("HandshakeTraceSampled16", "ns/op"); ok && v > 1.2*off {
		out = append(out, Violation{"trace-sampled-overhead",
			fmt.Sprintf("1-in-16 sampling ns/op %.0f is %.1f%% over the untraced %.0f, want <= 20%%",
				v, 100*(v-off)/off, off)})
	}
	if v, ok := r.Metric("HandshakeTraceAlways", "ns/op"); ok && v > 2*off {
		out = append(out, Violation{"trace-always-overhead",
			fmt.Sprintf("always-on tracing ns/op %.0f is %.2fx the untraced %.0f, want <= 2x", v, v/off, off)})
	}
	return out
}

// checkProbeShape bounds the probe spine's fan-out cost against the
// sink-free fast path: production 1-in-16 sampling must stay
// marginal, and even all three sinks (anatomy + telemetry + trace)
// must cost no more than the pre-spine always-on tracing ceiling.
func checkProbeShape(r *Report) []Violation {
	var out []Violation
	off, ok := r.Metric("HandshakeProbeOff", "ns/op")
	if !ok || off <= 0 {
		return []Violation{{"probe-baseline", "HandshakeProbeOff has no ns/op metric"}}
	}
	if v, ok := r.Metric("HandshakeProbeSampled16", "ns/op"); ok && v > 1.25*off {
		out = append(out, Violation{"probe-sampled-overhead",
			fmt.Sprintf("1-in-16 sampled sinks ns/op %.0f is %.1f%% over the sink-free %.0f, want <= 25%%",
				v, 100*(v-off)/off, off)})
	}
	if v, ok := r.Metric("HandshakeProbeAll", "ns/op"); ok && v > 1.5*off {
		out = append(out, Violation{"probe-all-overhead",
			fmt.Sprintf("all-sinks ns/op %.0f is %.2fx the sink-free %.0f, want <= 1.5x", v, v/off, off)})
	}
	return out
}

// checkLoadShape sanity-checks an sslload report: quantiles must be
// ordered (p50 <= p95 <= p99 <= max) per phase and the phase anatomy
// must nest (handshake can't exceed the total).
func checkLoadShape(r *Report) []Violation {
	var out []Violation
	for _, name := range r.SortedResults() {
		br := r.Results[name]
		p50, ok50 := br.Metrics["p50_us"]
		p95, ok95 := br.Metrics["p95_us"]
		p99, ok99 := br.Metrics["p99_us"]
		max, okMax := br.Metrics["max_us"]
		if !(ok50 && ok95 && ok99 && okMax) {
			continue
		}
		if p50 > p95 || p95 > p99 || p99 > max {
			out = append(out, Violation{"load-quantile-order",
				fmt.Sprintf("%s: p50 %.0f / p95 %.0f / p99 %.0f / max %.0f not monotone", name, p50, p95, p99, max)})
		}
	}
	hs, okHS := r.Metric("handshake", "mean_us")
	total, okT := r.Metric("total", "mean_us")
	if okHS && okT && hs > total {
		out = append(out, Violation{"load-phase-nesting",
			fmt.Sprintf("mean handshake %.0fus exceeds mean total %.0fus", hs, total)})
	}
	return out
}
