package baseline

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func report(bench string, results map[string]map[string]float64) *Report {
	r := &Report{Bench: bench, Results: map[string]*BenchResult{}}
	for name, metrics := range results {
		r.Results[name] = &BenchResult{Iterations: 100, Metrics: metrics}
	}
	return r
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := report("b", map[string]map[string]float64{
		"X": {"ns/op": 1000, "decrypts/s": 500},
	})
	fresh := report("b", map[string]map[string]float64{
		"X": {"ns/op": 1100, "decrypts/s": 450}, // 10% worse both ways
	})
	d := Compare(base, fresh, DefaultTolerance())
	if d.Failed() {
		t.Fatalf("10%% drift failed the 25%% gate:\n%s", d.Summary())
	}
	if len(d.Deltas) != 2 {
		t.Fatalf("compared %d metrics, want 2", len(d.Deltas))
	}
}

func TestCompareDirectionality(t *testing.T) {
	base := report("b", map[string]map[string]float64{
		"X": {"ns/op": 1000, "decrypts/s": 500},
	})
	// Massive *improvements* must never fail: faster ns/op, higher rate.
	fresh := report("b", map[string]map[string]float64{
		"X": {"ns/op": 100, "decrypts/s": 5000},
	})
	if d := Compare(base, fresh, DefaultTolerance()); d.Failed() {
		t.Fatalf("improvement failed the gate:\n%s", d.Summary())
	}
	// A rate dropping 40% must fail and name the metric with a delta.
	fresh = report("b", map[string]map[string]float64{
		"X": {"ns/op": 1000, "decrypts/s": 300},
	})
	d := Compare(base, fresh, DefaultTolerance())
	if !d.Failed() || len(d.Failures) != 1 {
		t.Fatalf("40%% rate regression passed:\n%s", d.Summary())
	}
	f := d.Failures[0]
	if f.Metric != "decrypts/s" || math.Abs(f.Pct-40) > 0.01 {
		t.Fatalf("failure = %+v, want decrypts/s at +40%%", f)
	}
	if !strings.Contains(d.Summary(), "decrypts/s") {
		t.Fatalf("summary does not name the metric:\n%s", d.Summary())
	}
}

func TestCompareMissingResultFails(t *testing.T) {
	base := report("b", map[string]map[string]float64{"X": {"ns/op": 1}, "Y": {"ns/op": 1}})
	fresh := report("b", map[string]map[string]float64{"X": {"ns/op": 1}})
	d := Compare(base, fresh, DefaultTolerance())
	if !d.Failed() || len(d.Missing) != 1 || d.Missing[0] != "Y" {
		t.Fatalf("vanished result not flagged: %+v", d)
	}
}

func TestCompareAllocsFromZeroFails(t *testing.T) {
	base := report("b", map[string]map[string]float64{"X": {"allocs/op": 0}})
	fresh := report("b", map[string]map[string]float64{"X": {"allocs/op": 2}})
	d := Compare(base, fresh, DefaultTolerance())
	if !d.Failed() {
		t.Fatal("allocs 0 -> 2 passed the gate")
	}
}

func TestBatchShape(t *testing.T) {
	good := report("rsa-batch-amortization", map[string]map[string]float64{
		"BatchDecrypt/batch=1": {"decrypts/s": 885},
		"BatchDecrypt/batch=2": {"decrypts/s": 1318},
		"BatchDecrypt/batch=4": {"decrypts/s": 2104},
		"BatchDecrypt/batch=8": {"decrypts/s": 2481},
	})
	if v, known := CheckShape(good); !known || len(v) != 0 {
		t.Fatalf("committed curve rejected: %v", v)
	}
	// Perturb: batch=8 collapses below the singleton rate. The stored
	// speedup field is absent/stale on purpose — the check must
	// recompute from decrypts/s.
	bad := report("rsa-batch-amortization", map[string]map[string]float64{
		"BatchDecrypt/batch=1": {"decrypts/s": 885},
		"BatchDecrypt/batch=2": {"decrypts/s": 1318},
		"BatchDecrypt/batch=4": {"decrypts/s": 2104},
		"BatchDecrypt/batch=8": {"decrypts/s": 600},
	})
	v, _ := CheckShape(bad)
	if len(v) == 0 {
		t.Fatal("collapsed batch=8 passed the shape check")
	}
	if !strings.Contains(v[0].Detail, "batch=8") {
		t.Fatalf("violation does not name the point: %v", v)
	}
}

func TestRecordAndTraceShapes(t *testing.T) {
	rec := report("record-seal-allocs", map[string]map[string]float64{
		"RecordSeal/RC4-MD5": {"allocs/op": 1},
		"RecordOpen/RC4-MD5": {"allocs/op": 0},
	})
	if v, known := CheckShape(rec); !known || len(v) != 0 {
		t.Fatalf("good record shape rejected: %v", v)
	}
	rec.Results["RecordSeal/RC4-MD5"].Metrics["allocs/op"] = 5
	if v, _ := CheckShape(rec); len(v) == 0 {
		t.Fatal("5 allocs/op seal passed")
	}

	tr := report("trace-overhead", map[string]map[string]float64{
		"HandshakeTraceOff":       {"ns/op": 312094},
		"HandshakeTraceSampled16": {"ns/op": 319011},
		"HandshakeTraceAlways":    {"ns/op": 359035},
	})
	if v, known := CheckShape(tr); !known || len(v) != 0 {
		t.Fatalf("good trace shape rejected: %v", v)
	}
	tr.Results["HandshakeTraceSampled16"].Metrics["ns/op"] = 500000
	if v, _ := CheckShape(tr); len(v) == 0 {
		t.Fatal("60% sampling overhead passed")
	}
}

func TestUnknownBenchSkipped(t *testing.T) {
	r := report("telemetry-overhead", nil)
	if v, known := CheckShape(r); known || len(v) != 0 {
		t.Fatalf("unknown bench not skipped: known=%v %v", known, v)
	}
}

func TestCommittedReportsPassShapeChecks(t *testing.T) {
	// The real committed baselines must satisfy their own shapes —
	// this is `make checkdrift`'s core claim, run as a unit test.
	paths, reports, err := Committed(filepath.Join("..", "..", "docs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) < 4 {
		t.Fatalf("found only %d committed BENCH reports", len(reports))
	}
	known := 0
	for i, r := range reports {
		v, k := CheckShape(r)
		if k {
			known++
		}
		if len(v) != 0 {
			t.Errorf("%s: %v", paths[i], v)
		}
	}
	if known < 3 {
		t.Fatalf("only %d committed reports have registered shapes", known)
	}
}

func TestHistoryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r1 := report("b", map[string]map[string]float64{"X": {"ns/op": 100}})
	r2 := report("b", map[string]map[string]float64{"X": {"ns/op": 110}})
	other := report("other", map[string]map[string]float64{"X": {"ns/op": 1}})
	if err := r1.Write(filepath.Join(dir, "BENCH_b-20260101000000.json")); err != nil {
		t.Fatal(err)
	}
	if err := r2.Write(filepath.Join(dir, "BENCH_b-20260201000000.json")); err != nil {
		t.Fatal(err)
	}
	if err := other.Write(filepath.Join(dir, "BENCH_other-20260301000000.json")); err != nil {
		t.Fatal(err)
	}
	_, hist, err := History(dir, "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 {
		t.Fatalf("history has %d entries, want 2", len(hist))
	}
	steps := Trend(hist, report("b", map[string]map[string]float64{"X": {"ns/op": 400}}), DefaultTolerance())
	if len(steps) != 2 {
		t.Fatalf("trend has %d steps, want 2", len(steps))
	}
	if steps[0].Failed() {
		t.Fatalf("100->110 step failed: %s", steps[0].Summary())
	}
	if !steps[1].Failed() {
		t.Fatal("110->400 step passed")
	}
}

func TestBulkShape(t *testing.T) {
	rows := func(rc4, aes, des, tdes, md5, sha float64) map[string]map[string]float64 {
		return map[string]map[string]float64{
			"BulkPath/RC4-MD5":          {"cipher-cyc/B": rc4, "mac-cyc/B": md5, "writes/record": 1, "MB/s": 70},
			"BulkPath/RC4-SHA":          {"cipher-cyc/B": rc4, "mac-cyc/B": sha, "writes/record": 1, "MB/s": 60},
			"BulkPath/AES128-SHA":       {"cipher-cyc/B": aes, "mac-cyc/B": sha, "writes/record": 1, "MB/s": 45},
			"BulkPath/DES-CBC-SHA":      {"cipher-cyc/B": des, "mac-cyc/B": sha, "writes/record": 1, "MB/s": 30},
			"BulkPath/DES-CBC3-SHA":     {"cipher-cyc/B": tdes, "mac-cyc/B": sha, "writes/record": 1, "MB/s": 12},
			"BulkPath/RC4-MD5-seq1m":    {"writes/record": 1, "MB/s": 69},
			"BulkPath/RC4-MD5-vec":      {"writes/record": 1.0 / 64, "MB/s": 72},
			"BulkPath/AES128-SHA-seq1m": {"writes/record": 1, "MB/s": 44},
			"BulkPath/AES128-SHA-vec":   {"writes/record": 1.0 / 64, "MB/s": 48},
		}
	}
	good := report("bulk-path", rows(9, 27, 47, 132, 6, 14))
	if v, known := CheckShape(good); !known || len(v) != 0 {
		t.Fatalf("paper-shaped bulk report rejected: %v", v)
	}
	// RC4 costlier than AES: the Table 11 ordering inverted.
	v, _ := CheckShape(report("bulk-path", rows(30, 27, 47, 132, 6, 14)))
	if len(v) == 0 {
		t.Fatal("inverted cipher ordering passed the bulk shape check")
	}
	if !strings.Contains(v[0].Check, "bulk-cipher-order") {
		t.Fatalf("violation = %v, want bulk-cipher-order", v)
	}
	// MD5 costlier than SHA-1.
	if v, _ := CheckShape(report("bulk-path", rows(9, 27, 47, 132, 15, 14))); len(v) == 0 {
		t.Fatal("inverted MAC ordering passed the bulk shape check")
	}
	// 3DES degenerating to single-DES cost.
	if v, _ := CheckShape(report("bulk-path", rows(9, 27, 47, 50, 6, 14))); len(v) == 0 {
		t.Fatal("collapsed 3DES ratio passed the bulk shape check")
	}
	// A missing row is reported, not skipped.
	partial := report("bulk-path", map[string]map[string]float64{
		"BulkPath/RC4-MD5": {"cipher-cyc/B": 9, "mac-cyc/B": 6},
	})
	if v, _ := CheckShape(partial); len(v) == 0 {
		t.Fatal("report with missing suites passed the bulk shape check")
	}

	// The legacy two-syscalls-per-record seal coming back.
	legacy := rows(9, 27, 47, 132, 6, 14)
	legacy["BulkPath/AES128-SHA"]["writes/record"] = 2
	v, _ = CheckShape(report("bulk-path", legacy))
	if len(v) != 1 || !strings.Contains(v[0].Check, "bulk-writes-per-record") {
		t.Fatalf("violations = %v, want bulk-writes-per-record", v)
	}

	// Vectored path slower than the same-size sequential baseline.
	slow := rows(9, 27, 47, 132, 6, 14)
	slow["BulkPath/RC4-MD5-vec"]["MB/s"] = 50
	v, _ = CheckShape(report("bulk-path", slow))
	if len(v) != 1 || !strings.Contains(v[0].Check, "bulk-vectored") {
		t.Fatalf("violations = %v, want bulk-vectored", v)
	}

	// Dropping the -vec results must not silently retire the gate.
	dropped := rows(9, 27, 47, 132, 6, 14)
	delete(dropped, "BulkPath/AES128-SHA-vec")
	v, _ = CheckShape(report("bulk-path", dropped))
	if len(v) != 1 || !strings.Contains(v[0].Check, "bulk-vectored") {
		t.Fatalf("violations = %v, want bulk-vectored for missing -vec result", v)
	}

	// A flight flush that stopped coalescing (one write per record on
	// the vectored path) is caught even when throughput holds.
	uncoalesced := rows(9, 27, 47, 132, 6, 14)
	uncoalesced["BulkPath/RC4-MD5-vec"]["writes/record"] = 1
	v, _ = CheckShape(report("bulk-path", uncoalesced))
	if len(v) != 1 || !strings.Contains(v[0].Check, "bulk-vectored") {
		t.Fatalf("violations = %v, want bulk-vectored for uncoalesced flush", v)
	}
}

func TestHistorySamplerShape(t *testing.T) {
	good := report("history-sampler", map[string]map[string]float64{
		"HistorySample": {"ns/op": 4500, "allocs/op": 0},
	})
	if v, known := CheckShape(good); !known || len(v) != 0 {
		t.Fatalf("good sampler shape rejected: %v", v)
	}

	// A sampling tick that allocates would make the observatory a
	// steady-state garbage source — the core claim of the shape.
	good.Results["HistorySample"].Metrics["allocs/op"] = 1
	if v, _ := CheckShape(good); len(v) != 1 || !strings.Contains(v[0].Check, "history-allocs") {
		t.Fatalf("allocating tick passed: %v", v)
	}

	// A tick costing more than 1% of the 1s interval.
	slow := report("history-sampler", map[string]map[string]float64{
		"HistorySample": {"ns/op": 50e6, "allocs/op": 0},
	})
	if v, _ := CheckShape(slow); len(v) != 1 || !strings.Contains(v[0].Check, "history-tick-cost") {
		t.Fatalf("50ms tick passed: %v", v)
	}

	// Dropping the result must not silently retire the gate.
	empty := report("history-sampler", nil)
	if v, _ := CheckShape(empty); len(v) != 1 || !strings.Contains(v[0].Check, "history-results") {
		t.Fatalf("empty report passed: %v", v)
	}
}

func TestTrendsSeries(t *testing.T) {
	hist := []*Report{
		report("b", map[string]map[string]float64{"X": {"ns/op": 100}}),
		report("b", map[string]map[string]float64{"X": {"ns/op": 110, "MB/s": 50}}),
	}
	committed := report("b", map[string]map[string]float64{
		"X": {"ns/op": 120, "MB/s": 55},
	})
	series := Trends(hist, committed)
	if len(series) != 2 {
		t.Fatalf("got %d series, want 2", len(series))
	}
	// Sorted by result then metric: MB/s before ns/op. The MB/s series
	// skips the first archive (metric absent there).
	mb, ns := series[0], series[1]
	if mb.Metric != "MB/s" || len(mb.Values) != 2 || mb.First() != 50 || mb.Last() != 55 {
		t.Fatalf("MB/s series = %+v", mb)
	}
	if ns.Metric != "ns/op" || len(ns.Values) != 3 || ns.First() != 100 || ns.Last() != 120 {
		t.Fatalf("ns/op series = %+v", ns)
	}
	if d := ns.DeltaPct(); math.Abs(d-20) > 0.01 {
		t.Fatalf("ns/op delta = %v, want +20%%", d)
	}
	if Trends(hist, nil) != nil {
		t.Fatal("nil committed report produced series")
	}
}

func TestNonblockShape(t *testing.T) {
	rows := func(elBytes, grBytes, readAllocs, nbNs float64) map[string]map[string]float64 {
		return map[string]map[string]float64{
			"NonBlockHandshake":         {"ns/op": nbNs},
			"GoroutinePerConnHandshake": {"ns/op": 700000},
			"IdleConns/eventloop":       {"bytes/conn": elBytes},
			"IdleConns/goroutine":       {"bytes/conn": grBytes},
			"NonBlockReadSteady":        {"allocs/op": readAllocs, "ns/op": 15000},
		}
	}
	good := report("nonblock", rows(4300, 11200, 0, 720000))
	if v, known := CheckShape(good); !known || len(v) != 0 {
		t.Fatalf("good nonblock shape rejected: known=%v %v", known, v)
	}

	// Idle economics inverted: the event-loop conn costs more memory.
	if v, _ := CheckShape(report("nonblock", rows(12000, 11200, 0, 720000))); len(v) == 0 {
		t.Fatal("inverted idle bytes/conn passed")
	}
	// Steady-state read path started allocating.
	if v, _ := CheckShape(report("nonblock", rows(4300, 11200, 2, 720000))); len(v) == 0 {
		t.Fatal("allocating read path passed")
	}
	// Stepped handshake far slower than the blocking wrapper.
	if v, _ := CheckShape(report("nonblock", rows(4300, 11200, 0, 2000000))); len(v) == 0 {
		t.Fatal("2.8x slower stepped handshake passed")
	}
	// Dropping the idle measurements must not retire the gate.
	partial := report("nonblock", map[string]map[string]float64{
		"NonBlockHandshake":         {"ns/op": 720000},
		"GoroutinePerConnHandshake": {"ns/op": 700000},
		"NonBlockReadSteady":        {"allocs/op": 0},
	})
	if v, _ := CheckShape(partial); len(v) == 0 {
		t.Fatal("missing IdleConns results passed")
	}
}
