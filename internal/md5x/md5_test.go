package md5x

import (
	"bytes"
	stdmd5 "crypto/md5"
	"encoding/hex"
	"strings"
	"testing"
	"testing/quick"

	"sslperf/internal/perf"
)

// RFC 1321 appendix test suite.
func TestRFC1321Vectors(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "d41d8cd98f00b204e9800998ecf8427e"},
		{"a", "0cc175b9c0f1b6a831c399e269772661"},
		{"abc", "900150983cd24fb0d6963f7d28e17f72"},
		{"message digest", "f96b697d7cb7938d525a2f31aaf161d0"},
		{"abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"},
		{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
			"d174ab98d277d9f5a5611c2c9f419d9f"},
		{strings.Repeat("1234567890", 8), "57edf4a22be3c955ac49da2e2107b67a"},
	}
	for _, c := range cases {
		got := Sum16([]byte(c.in))
		if hex.EncodeToString(got[:]) != c.want {
			t.Errorf("MD5(%q) = %x, want %s", c.in, got, c.want)
		}
	}
}

func TestAgainstStdlibProperty(t *testing.T) {
	f := func(data []byte) bool {
		got := Sum16(data)
		want := stdmd5.Sum(data)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestChunkedWrites(t *testing.T) {
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	whole := Sum16(data)
	d := New()
	for i := 0; i < len(data); i += 13 {
		end := min(i+13, len(data))
		d.Write(data[i:end])
	}
	if !bytes.Equal(d.Sum(nil), whole[:]) {
		t.Fatal("chunked writes differ from one-shot")
	}
}

func TestSumDoesNotFinalize(t *testing.T) {
	d := New()
	d.Write([]byte("ab"))
	first := d.Sum(nil)
	second := d.Sum(nil)
	if !bytes.Equal(first, second) {
		t.Fatal("Sum changed state")
	}
	d.Write([]byte("c"))
	want := Sum16([]byte("abc"))
	if !bytes.Equal(d.Sum(nil), want[:]) {
		t.Fatal("writing after Sum broken")
	}
}

func TestReset(t *testing.T) {
	d := New()
	d.Write([]byte("junk"))
	d.Reset()
	d.Write([]byte("abc"))
	want := Sum16([]byte("abc"))
	if !bytes.Equal(d.Sum(nil), want[:]) {
		t.Fatal("Reset did not restore initial state")
	}
}

func TestBoundarySizes(t *testing.T) {
	// Lengths around the padding boundary (55/56/63/64/65).
	for _, n := range []int{54, 55, 56, 57, 63, 64, 65, 119, 120, 128} {
		data := bytes.Repeat([]byte{0x5c}, n)
		got := Sum16(data)
		want := stdmd5.Sum(data)
		if got != want {
			t.Errorf("length %d: %x != %x", n, got, want)
		}
	}
}

func TestInterfaceValues(t *testing.T) {
	d := New()
	if d.Size() != 16 || d.BlockSize() != 64 {
		t.Fatalf("Size/BlockSize = %d/%d", d.Size(), d.BlockSize())
	}
}

func TestProfilePhasesShape(t *testing.T) {
	b := ProfilePhases(1024, 20000)
	names := b.Names()
	if len(names) != 3 || names[0] != PhaseInit || names[1] != PhaseUpdate || names[2] != PhaseFinal {
		t.Fatalf("phases = %v", names)
	}
	// Table 10: update is ~91% for 1024-byte input.
	if pct := b.Percent(PhaseUpdate); pct < 60 {
		t.Fatalf("update = %.1f%%, want dominant\n%s", pct, b)
	}
	if b.Percent(PhaseFinal) >= b.Percent(PhaseUpdate) {
		t.Fatal("final should be much smaller than update")
	}
}

func TestTraces(t *testing.T) {
	var blk perf.Trace
	TraceBlock(&blk)
	if blk.Bytes != BlockSize || blk.Total() == 0 {
		t.Fatal("block trace wrong")
	}
	var h perf.Trace
	TraceHash(&h, 1024)
	// 1024 bytes + padding = 17 blocks.
	if h.Total() != 17*blk.Total() {
		t.Fatalf("hash trace = %d ops, want %d", h.Total(), 17*blk.Total())
	}
	if h.Bytes != 1024 {
		t.Fatalf("hash bytes = %d", h.Bytes)
	}
	// Table 11: MD5 path length 12 instr/byte — the shortest of all.
	if pl := h.PathLength(); pl < 5 || pl > 30 {
		t.Fatalf("MD5 path length = %.1f, want ~12", pl)
	}
}
