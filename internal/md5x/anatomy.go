package md5x

import (
	"time"

	"sslperf/internal/perf"
)

// Phase names for the Table 10 breakdown.
const (
	PhaseInit   = "init"
	PhaseUpdate = "update"
	PhaseFinal  = "final"
)

// ProfilePhases hashes a dataLen-byte message n times, timing the
// Init, Update and Final phases separately, and returns the per-phase
// breakdown — the MD5 column of the paper's Table 10 (which uses
// dataLen = 1024).
func ProfilePhases(dataLen, n int) *perf.Breakdown {
	b := perf.NewBreakdown()
	data := make([]byte, dataLen)
	digests := make([]*Digest, n)

	start := time.Now()
	for i := range digests {
		digests[i] = New()
	}
	b.Add(PhaseInit, time.Since(start))

	start = time.Now()
	for i := range digests {
		digests[i].Write(data)
	}
	b.Add(PhaseUpdate, time.Since(start))

	start = time.Now()
	var sum []byte
	for i := range digests {
		sum = digests[i].Sum(sum[:0])
	}
	b.Add(PhaseFinal, time.Since(start))
	return b
}

// TraceBlock emits the abstract operation stream of one MD5
// compression (64 rounds) into tr. Per round: the boolean function
// (2–4 logical ops), two adds for constant+message, one add for the
// chaining value, a rotate, and a final add; x86 register pressure
// adds message-word loads and occasional spills — the movl/addl/xorl
// mix of the paper's Table 12.
func TraceBlock(tr *perf.Trace) {
	const rounds = 64
	tr.Emit(perf.OpLoad, 16+rounds) // message schedule + per-round m[g]
	tr.Emit(perf.OpAnd, 2*32)       // F/G rounds: two ANDs each
	tr.Emit(perf.OpNot, 32+16)      // F/G negation + I negation
	tr.Emit(perf.OpOr, 32+16)
	tr.Emit(perf.OpXor, 2*16+2*16) // H rounds (2 xors) + I rounds (1 xor + mix)
	tr.Emit(perf.OpAdd, 4*rounds)
	tr.Emit(perf.OpRotate, rounds)
	tr.Emit(perf.OpMove, rounds) // register rotation a,d,c,b
	tr.Emit(perf.OpStore, 8)     // chaining update
	tr.Emit(perf.OpLoad, 8)
	tr.Emit(perf.OpAdd, 4)
	tr.Emit(perf.OpBranch, rounds/4) // partially unrolled loop control
	tr.Emit(perf.OpCmp, rounds/4)
	tr.Bytes += BlockSize
}

// TraceHash emits the operations of hashing n bytes (including the
// padding/length blocks of Final) into tr.
func TraceHash(tr *perf.Trace, n uint64) {
	before := tr.Bytes
	blocks := (n + 8 + BlockSize) / BlockSize // data + padding
	var one perf.Trace
	TraceBlock(&one)
	for i := uint64(0); i < blocks; i++ {
		tr.Add(&one)
	}
	tr.Bytes = before + n // path length counts payload bytes only
}
