// Package md5x implements the MD5 message digest (RFC 1321) from
// scratch, factored into the three phases of the paper's Table 10:
// Init (state setup), Update (the 64-byte block compression applied
// over the input), and Final (padding + length block + digest
// extraction).
package md5x

import (
	"encoding/binary"
	"math"
)

// Size is the MD5 digest length in bytes (128 bits).
const Size = 16

// BlockSize is the MD5 compression block size in bytes.
const BlockSize = 64

// sineTable holds the 64 per-round additive constants
// K[i] = floor(abs(sin(i+1)) * 2^32), computed at init rather than
// transcribed.
var sineTable [64]uint32

func init() {
	for i := range sineTable {
		sineTable[i] = uint32(math.Floor(math.Abs(math.Sin(float64(i+1))) * (1 << 32)))
	}
}

// A Digest is a running MD5 computation. The zero value is not valid;
// use New.
type Digest struct {
	s   [4]uint32
	buf [BlockSize]byte
	n   int    // bytes buffered
	len uint64 // total bytes written
}

// New returns an initialized MD5 digest (the paper's Init phase).
func New() *Digest {
	d := &Digest{}
	d.Reset()
	return d
}

// Reset reinitializes the digest state.
func (d *Digest) Reset() {
	d.s = [4]uint32{0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476}
	d.n = 0
	d.len = 0
}

// Size returns the digest length (16).
func (d *Digest) Size() int { return Size }

// BlockSize returns the compression block size (64).
func (d *Digest) BlockSize() int { return BlockSize }

// Write absorbs p into the digest (the paper's Update phase). It
// never fails.
func (d *Digest) Write(p []byte) (int, error) {
	n := len(p)
	d.len += uint64(n)
	if d.n > 0 {
		c := copy(d.buf[d.n:], p)
		d.n += c
		p = p[c:]
		if d.n == BlockSize {
			d.block(d.buf[:])
			d.n = 0
		}
	}
	for len(p) >= BlockSize {
		d.block(p[:BlockSize])
		p = p[BlockSize:]
	}
	if len(p) > 0 {
		d.n = copy(d.buf[:], p)
	}
	return n, nil
}

// Sum appends the digest of everything written so far to in and
// returns the result (the paper's Final phase). It does not change
// the running state, so more data may be written afterwards.
func (d *Digest) Sum(in []byte) []byte {
	dd := *d // finalize a copy
	var pad [BlockSize + 8]byte
	pad[0] = 0x80
	padLen := BlockSize - int((dd.len+8)%BlockSize)
	if padLen == 0 {
		padLen = BlockSize
	}
	var lenBlock [8]byte
	binary.LittleEndian.PutUint64(lenBlock[:], dd.len*8)
	dd.Write(pad[:padLen])
	dd.Write(lenBlock[:])
	var out [Size]byte
	for i, v := range dd.s {
		binary.LittleEndian.PutUint32(out[4*i:], v)
	}
	return append(in, out[:]...)
}

// block runs the MD5 compression function over one 64-byte block.
func (d *Digest) block(p []byte) {
	var m [16]uint32
	for i := 0; i < 16; i++ {
		m[i] = binary.LittleEndian.Uint32(p[4*i:])
	}
	a, b, c, dd := d.s[0], d.s[1], d.s[2], d.s[3]
	// Four 16-round stages, one boolean function each, as real MD5
	// code is written (the paper's Figure 4 operations appear here:
	// (a) is F's (X∧Y)∨(¬X∧Z), (b) is H's three-input XOR). The
	// message-word order and rotations follow RFC 1321 §3.4.
	ff := func(a, b, c, d, m uint32, i int, s uint) uint32 {
		sum := a + ((b & c) | (^b & d)) + sineTable[i] + m
		return b + (sum<<s | sum>>(32-s))
	}
	gg := func(a, b, c, d, m uint32, i int, s uint) uint32 {
		sum := a + ((d & b) | (^d & c)) + sineTable[i] + m
		return b + (sum<<s | sum>>(32-s))
	}
	hh := func(a, b, c, d, m uint32, i int, s uint) uint32 {
		sum := a + (b ^ c ^ d) + sineTable[i] + m
		return b + (sum<<s | sum>>(32-s))
	}
	ii := func(a, b, c, d, m uint32, i int, s uint) uint32 {
		sum := a + (c ^ (b | ^d)) + sineTable[i] + m
		return b + (sum<<s | sum>>(32-s))
	}
	for i := 0; i < 16; i += 4 {
		a = ff(a, b, c, dd, m[i], i, 7)
		dd = ff(dd, a, b, c, m[i+1], i+1, 12)
		c = ff(c, dd, a, b, m[i+2], i+2, 17)
		b = ff(b, c, dd, a, m[i+3], i+3, 22)
	}
	for i := 16; i < 32; i += 4 {
		a = gg(a, b, c, dd, m[(5*i+1)%16], i, 5)
		dd = gg(dd, a, b, c, m[(5*(i+1)+1)%16], i+1, 9)
		c = gg(c, dd, a, b, m[(5*(i+2)+1)%16], i+2, 14)
		b = gg(b, c, dd, a, m[(5*(i+3)+1)%16], i+3, 20)
	}
	for i := 32; i < 48; i += 4 {
		a = hh(a, b, c, dd, m[(3*i+5)%16], i, 4)
		dd = hh(dd, a, b, c, m[(3*(i+1)+5)%16], i+1, 11)
		c = hh(c, dd, a, b, m[(3*(i+2)+5)%16], i+2, 16)
		b = hh(b, c, dd, a, m[(3*(i+3)+5)%16], i+3, 23)
	}
	for i := 48; i < 64; i += 4 {
		a = ii(a, b, c, dd, m[(7*i)%16], i, 6)
		dd = ii(dd, a, b, c, m[(7*(i+1))%16], i+1, 10)
		c = ii(c, dd, a, b, m[(7*(i+2))%16], i+2, 15)
		b = ii(b, c, dd, a, m[(7*(i+3))%16], i+3, 21)
	}
	d.s[0] += a
	d.s[1] += b
	d.s[2] += c
	d.s[3] += dd
}

// Sum16 is a convenience one-shot MD5.
func Sum16(data []byte) [Size]byte {
	d := New()
	d.Write(data)
	var out [Size]byte
	copy(out[:], d.Sum(nil))
	return out
}
