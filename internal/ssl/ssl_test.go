package ssl

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"sslperf/internal/handshake"
	"sslperf/internal/record"
	"sslperf/internal/suite"
)

var (
	idOnce sync.Once
	testID *Identity
)

func identity(t testing.TB) *Identity {
	t.Helper()
	idOnce.Do(func() {
		var err error
		testID, err = NewIdentity(NewPRNG(42), 512, "ssl-test", time.Now())
		if err != nil {
			panic(err)
		}
	})
	return testID
}

// connect runs a full handshake over an in-memory pipe, returning the
// connected client and server conns.
func connect(t testing.TB, clientCfg, serverCfg *Config) (*Conn, *Conn) {
	t.Helper()
	ct, st := Pipe()
	client := ClientConn(ct, clientCfg)
	server := ServerConn(st, serverCfg)
	errs := make(chan error, 1)
	go func() { errs <- client.Handshake() }()
	if err := server.Handshake(); err != nil {
		t.Fatalf("server handshake: %v", err)
	}
	if err := <-errs; err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	return client, server
}

func clientCfg(mod func(*Config)) *Config {
	cfg := &Config{Rand: NewPRNG(7), InsecureSkipVerify: true}
	if mod != nil {
		mod(cfg)
	}
	return cfg
}

func TestHandshakeAndEchoAllSuites(t *testing.T) {
	id := identity(t)
	for _, s := range suite.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			ccfg := clientCfg(func(c *Config) { c.Suites = []suite.ID{s.ID} })
			scfg := id.ServerConfig(NewPRNG(8))
			client, server := connect(t, ccfg, scfg)

			cs, err := client.ConnectionState()
			if err != nil || cs.Suite.ID != s.ID {
				t.Fatalf("negotiated %v, want %v", cs.Suite, s.Name)
			}

			msg := []byte("ping over " + s.Name)
			done := make(chan error, 1)
			go func() {
				buf := make([]byte, len(msg))
				if _, err := io.ReadFull(server, buf); err != nil {
					done <- err
					return
				}
				_, err := server.Write(bytes.ToUpper(buf))
				done <- err
			}()
			if _, err := client.Write(msg); err != nil {
				t.Fatal(err)
			}
			reply := make([]byte, len(msg))
			if _, err := io.ReadFull(client, reply); err != nil {
				t.Fatal(err)
			}
			if err := <-done; err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(reply, bytes.ToUpper(msg)) {
				t.Fatalf("reply %q", reply)
			}
		})
	}
}

func TestLargeTransfer(t *testing.T) {
	id := identity(t)
	client, server := connect(t, clientCfg(nil), id.ServerConfig(NewPRNG(9)))
	const size = 200_000 // crosses many fragment boundaries
	data := make([]byte, size)
	NewPRNG(1).Read(data)
	go func() {
		client.Write(data)
		client.Close()
	}()
	got, err := io.ReadAll(server)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("transfer corrupted: %d bytes vs %d", len(got), len(data))
	}
}

func TestCloseNotifyGivesEOF(t *testing.T) {
	id := identity(t)
	client, server := connect(t, clientCfg(nil), id.ServerConfig(NewPRNG(10)))
	client.Write([]byte("bye"))
	client.Close()
	buf := make([]byte, 3)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Read(buf); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestSessionResumption(t *testing.T) {
	id := identity(t)
	cache := handshake.NewSessionCache(16)

	scfg := id.ServerConfig(NewPRNG(11))
	scfg.SessionCache = cache
	client, _ := connect(t, clientCfg(nil), scfg)
	sess, err := client.Session()
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 1 {
		t.Fatalf("cache has %d sessions", cache.Len())
	}

	// Second connection offering the session must resume.
	ccfg2 := clientCfg(func(c *Config) { c.Session = sess })
	scfg2 := id.ServerConfig(NewPRNG(12))
	scfg2.SessionCache = cache
	client2, server2 := connect(t, ccfg2, scfg2)
	cs, _ := client2.ConnectionState()
	if !cs.Resumed {
		t.Fatal("second handshake did not resume")
	}
	ss, _ := server2.ConnectionState()
	if !ss.Resumed {
		t.Fatal("server did not notice resumption")
	}
	// Resumed channel still works.
	go client2.Write([]byte("resumed!"))
	buf := make([]byte, 8)
	if _, err := io.ReadFull(server2, buf); err != nil || string(buf) != "resumed!" {
		t.Fatalf("resumed transfer: %q %v", buf, err)
	}
}

func TestResumptionWithUnknownSessionFallsBack(t *testing.T) {
	id := identity(t)
	cache := handshake.NewSessionCache(16)
	bogus := &handshake.Session{
		ID:     bytes.Repeat([]byte{0xaa}, 32),
		Suite:  suite.RSAWith3DESEDECBCSHA,
		Master: bytes.Repeat([]byte{0xbb}, 48),
	}
	ccfg := clientCfg(func(c *Config) { c.Session = bogus })
	scfg := id.ServerConfig(NewPRNG(13))
	scfg.SessionCache = cache
	client, _ := connect(t, ccfg, scfg)
	cs, _ := client.ConnectionState()
	if cs.Resumed {
		t.Fatal("resumed with a session the server never issued")
	}
}

func TestCertificateVerification(t *testing.T) {
	id := identity(t)
	// Self-signed verification path (InsecureSkipVerify = false).
	ccfg := &Config{Rand: NewPRNG(14), ServerName: "ssl-test"}
	client, _ := connect(t, ccfg, id.ServerConfig(NewPRNG(15)))
	if _, err := client.ConnectionState(); err != nil {
		t.Fatal(err)
	}
}

func TestCertificateNameMismatchFails(t *testing.T) {
	id := identity(t)
	ct, st := Pipe()
	client := ClientConn(ct, &Config{Rand: NewPRNG(16), ServerName: "wrong-name"})
	server := ServerConn(st, id.ServerConfig(NewPRNG(17)))
	go server.Handshake()
	if err := client.Handshake(); err == nil {
		t.Fatal("client accepted mismatched server name")
	}
}

func TestExpiredCertificateFails(t *testing.T) {
	id := identity(t)
	ct, st := Pipe()
	future := func() time.Time { return time.Now().Add(10 * 365 * 24 * time.Hour) }
	client := ClientConn(ct, &Config{Rand: NewPRNG(18), Time: future})
	server := ServerConn(st, id.ServerConfig(NewPRNG(19)))
	go server.Handshake()
	if err := client.Handshake(); err == nil {
		t.Fatal("client accepted expired certificate")
	}
}

func TestNoSharedSuiteFails(t *testing.T) {
	id := identity(t)
	ct, st := Pipe()
	client := ClientConn(ct, clientCfg(func(c *Config) {
		c.Suites = []suite.ID{suite.RSAWithRC4128MD5}
	}))
	scfg := id.ServerConfig(NewPRNG(20))
	scfg.Suites = []suite.ID{suite.RSAWithAES128CBCSHA}
	server := ServerConn(st, scfg)
	cerr := make(chan error, 1)
	go func() { cerr <- client.Handshake() }()
	serr := server.Handshake()
	if serr == nil {
		t.Fatal("server negotiated with no shared suite")
	}
	if err := <-cerr; err == nil {
		t.Fatal("client handshake unexpectedly succeeded")
	}
}

func TestAnatomyCapture(t *testing.T) {
	id := identity(t)
	ct, st := Pipe()
	client := ClientConn(ct, clientCfg(nil))
	server := ServerConn(st, id.ServerConfig(NewPRNG(21)))
	a := handshake.NewAnatomy()
	server.SetAnatomy(a)
	go client.Handshake()
	if err := server.Handshake(); err != nil {
		t.Fatal(err)
	}
	if len(a.Steps) < 9 {
		t.Fatalf("recorded %d steps, want >= 9", len(a.Steps))
	}
	// Step 5 (get_client_kx) must carry the RSA private decryption
	// and dominate the handshake, per Table 2.
	var step5 *handshake.Step
	for i := range a.Steps {
		if a.Steps[i].Name == "get_client_kx" {
			step5 = &a.Steps[i]
		}
	}
	if step5 == nil {
		t.Fatal("no get_client_kx step recorded")
	}
	var hasRSA bool
	for _, c := range step5.Crypto {
		if c.Name == handshake.FnRSAPrivateDecrypt {
			hasRSA = true
		}
	}
	if !hasRSA {
		t.Fatalf("step 5 crypto calls: %+v", step5.Crypto)
	}
	if step5.Elapsed < a.Total()/2 {
		t.Fatalf("get_client_kx is %v of %v total; paper says ~92%%",
			step5.Elapsed, a.Total())
	}
	// Table 3: public key encryption dominates the crypto breakdown.
	cb := a.CryptoBreakdown()
	if cb.Percent(handshake.CategoryPublic) < 50 {
		t.Fatalf("public key share %.1f%%, want dominant\n%s",
			cb.Percent(handshake.CategoryPublic), cb)
	}
}

func TestOverTCP(t *testing.T) {
	id := identity(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skip("no loopback networking:", err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		s := ServerConn(conn, id.ServerConfig(NewPRNG(22)))
		defer s.Close()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(s, buf); err != nil {
			done <- err
			return
		}
		_, err = s.Write(buf)
		done <- err
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := ClientConn(conn, clientCfg(nil))
	defer c.Close()
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("echo = %q", buf)
	}
}

func TestPRNGDeterministic(t *testing.T) {
	a := NewPRNG(5)
	b := NewPRNG(5)
	ba := make([]byte, 100)
	bb := make([]byte, 100)
	a.Read(ba)
	b.Read(bb)
	if !bytes.Equal(ba, bb) {
		t.Fatal("same seed produced different streams")
	}
	c := NewPRNG(6)
	bc := make([]byte, 100)
	c.Read(bc)
	if bytes.Equal(ba, bc) {
		t.Fatal("different seeds produced equal streams")
	}
}

func TestStatsAndObserver(t *testing.T) {
	id := identity(t)
	client, server := connect(t, clientCfg(nil), id.ServerConfig(NewPRNG(23)))
	var decrypts, verifies, bytesSeen int
	server.SetCryptoObserver(func(op record.CryptoOp, n int, d time.Duration) {
		switch op {
		case record.OpCipherDecrypt:
			decrypts++
			bytesSeen += n
		case record.OpMACVerify:
			verifies++
		}
	})
	go client.Write(make([]byte, 1000))
	buf := make([]byte, 1000)
	io.ReadFull(server, buf)
	if server.Stats().BytesRead < 1000 {
		t.Fatalf("stats = %+v", server.Stats())
	}
	if decrypts == 0 || verifies == 0 || bytesSeen < 1000 {
		t.Fatalf("observer saw decrypts=%d verifies=%d bytes=%d",
			decrypts, verifies, bytesSeen)
	}
}

func TestPipeCloseUnblocksReader(t *testing.T) {
	a, b := Pipe()
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := b.Read(buf)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if err != io.EOF {
			t.Fatalf("err = %v, want EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader not unblocked by close")
	}
}
