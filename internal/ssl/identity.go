package ssl

import (
	"io"
	"time"

	"sslperf/internal/rsa"
	"sslperf/internal/x509lite"
)

// An Identity is a server's key pair plus its self-signed
// certificate — everything a ServerConn config needs.
type Identity struct {
	Key     *rsa.PrivateKey
	Cert    *x509lite.Certificate
	CertDER []byte
}

// NewIdentity generates an RSA key of the given size and a
// self-signed certificate for cn valid for a year around now.
func NewIdentity(rnd io.Reader, bits int, cn string, now time.Time) (*Identity, error) {
	key, err := rsa.GenerateKey(rnd, bits)
	if err != nil {
		return nil, err
	}
	cert, err := x509lite.Create(rnd, cn, &key.PublicKey, cn, key,
		now.Add(-24*time.Hour), now.Add(365*24*time.Hour))
	if err != nil {
		return nil, err
	}
	return &Identity{Key: key, Cert: cert, CertDER: cert.Raw}, nil
}

// ServerConfig builds a server-side Config using this identity.
func (id *Identity) ServerConfig(rnd io.Reader) *Config {
	return &Config{Rand: rnd, Key: id.Key, CertDER: id.CertDER}
}
