package ssl

import (
	"bytes"
	"io"
	"runtime"
	"testing"

	"sslperf/internal/suite"
)

// These benchmarks quantify the two claims the sans-IO refactor
// makes: the FSM costs no handshake throughput against the blocking
// path (NonBlockHandshake vs GoroutinePerConnHandshake — the same
// crypto either way, minus the goroutine hand-off), and an idle
// event-loop connection costs a fraction of an idle goroutine-per-
// conn connection (IdleConns/eventloop vs IdleConns/goroutine,
// bytes/conn). The figures land in docs/BENCH_nonblock.json via make
// bench and the nonblock shape in internal/baseline gates the
// ordering plus the zero-alloc steady state.

// BenchmarkNonBlockHandshake drives one full handshake per op by
// shuttling the two sans-IO cores in memory — no goroutines, no pipe.
func BenchmarkNonBlockHandshake(b *testing.B) {
	ccfg, scfg := benchConfigs(b, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cli, srv := nbEstablishedPair(b, ccfg, scfg)
		cli.Close()
		srv.Close()
	}
}

// BenchmarkGoroutinePerConnHandshake is the blocking baseline: the
// same handshake over the in-memory pipe with the client on its own
// goroutine, as the goroutine-per-connection server runs it.
func BenchmarkGoroutinePerConnHandshake(b *testing.B) {
	ccfg, scfg := benchConfigs(b, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct, st := Pipe()
		client, server := ClientConn(ct, ccfg), ServerConn(st, scfg)
		errs := make(chan error, 1)
		go func() { errs <- client.Handshake() }()
		if err := server.Handshake(); err != nil {
			b.Fatal(err)
		}
		if err := <-errs; err != nil {
			b.Fatal(err)
		}
		ct.Close()
		st.Close()
	}
}

// measureIdleBytes reports the resident heap+stack delta per idle
// connection: establish b.N server-side connections, let the garbage
// collector settle, and attribute what remains.
func measureIdleBytes(b *testing.B, setup func(i int), cleanup func()) {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < b.N; i++ {
		setup(i)
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	held := float64(after.HeapAlloc+after.StackInuse) -
		float64(before.HeapAlloc+before.StackInuse)
	b.ReportMetric(held/float64(b.N), "bytes/conn")
	cleanup()
}

// BenchmarkIdleConns measures the memory an established-but-idle
// server connection pins in each serving model. The eventloop flavor
// holds only the NonBlockingConn core (buffers and session state);
// the goroutine flavor parks a per-connection goroutine in Read after
// handshaking on it — exactly what the goroutine server's serve()
// leaves behind — so its stack growth from the handshake is charged
// to the connection, as it is in production.
func BenchmarkIdleConns(b *testing.B) {
	id := identity(b)
	b.Run("eventloop", func(b *testing.B) {
		conns := make([]*NonBlockingConn, b.N)
		measureIdleBytes(b, func(i int) {
			ccfg := &Config{Rand: NewPRNG(uint64(i)*2 + 1), InsecureSkipVerify: true,
				Suites: []suite.ID{suite.RSAWithRC4128MD5}}
			scfg := &Config{Rand: NewPRNG(uint64(i)*2 + 2), Key: id.Key, CertDER: id.CertDER}
			_, srv := nbEstablishedPair(b, ccfg, scfg)
			conns[i] = srv
		}, func() {
			for _, c := range conns {
				c.Close()
			}
		})
	})
	b.Run("goroutine", func(b *testing.B) {
		clients := make([]*Conn, b.N)
		transports := make([]io.ReadWriteCloser, b.N)
		measureIdleBytes(b, func(i int) {
			ct, st := Pipe()
			ccfg := &Config{Rand: NewPRNG(uint64(i)*2 + 1), InsecureSkipVerify: true,
				Suites: []suite.ID{suite.RSAWithRC4128MD5}}
			scfg := &Config{Rand: NewPRNG(uint64(i)*2 + 2), Key: id.Key, CertDER: id.CertDER}
			client, server := ClientConn(ct, ccfg), ServerConn(st, scfg)
			done := make(chan error, 1)
			go func() {
				err := server.Handshake()
				done <- err
				if err == nil {
					var one [1]byte
					server.Read(one[:]) // park, as serve() does between requests
				}
			}()
			if err := client.Handshake(); err != nil {
				b.Fatal(err)
			}
			if err := <-done; err != nil {
				b.Fatal(err)
			}
			clients[i] = client
			transports[i] = st
		}, func() {
			for i := range clients {
				transports[i].Close() // unparks the reader goroutine
				clients[i].Close()
			}
		})
	})
}

// BenchmarkNonBlockReadSteady is the steady-state data path the
// zero-alloc gate in BENCH_nonblock.json pins: server seals, client
// feeds and reads, all buffers reused.
func BenchmarkNonBlockReadSteady(b *testing.B) {
	id := identity(b)
	cli, srv := nbEstablishedPair(b,
		&Config{Rand: NewPRNG(7), InsecureSkipVerify: true, Suites: []suite.ID{suite.RSAWithRC4128MD5}},
		&Config{Rand: NewPRNG(8), Key: id.Key, CertDER: id.CertDER},
	)
	payload := bytes.Repeat([]byte("z"), 1024)
	buf := make([]byte, 2048)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.WriteData(payload); err != nil {
			b.Fatal(err)
		}
		o := srv.Outgoing()
		cli.Feed(o)
		srv.ConsumeOutgoing(len(o))
		for got := 0; got < len(payload); {
			n, err := cli.ReadData(buf)
			if err != nil {
				b.Fatal(err)
			}
			got += n
		}
	}
}
