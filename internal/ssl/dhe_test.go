package ssl

import (
	"io"
	"testing"

	"sslperf/internal/handshake"
	"sslperf/internal/suite"
)

func TestDHEHandshakeDetails(t *testing.T) {
	id := identity(t)
	ccfg := clientCfg(func(c *Config) {
		c.Suites = []suite.ID{suite.DHERSAWithAES128CBCSHA}
	})
	client, server := connect(t, ccfg, id.ServerConfig(NewPRNG(41)))
	cs, err := client.ConnectionState()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Suite.Kx != suite.KxDHERSA {
		t.Fatal("negotiated suite is not DHE")
	}
	// Data flows.
	go client.Write([]byte("dhe!"))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(server, buf); err != nil || string(buf) != "dhe!" {
		t.Fatalf("transfer: %q %v", buf, err)
	}
}

func TestDHEAnatomyHasServerKx(t *testing.T) {
	id := identity(t)
	ct, st := Pipe()
	client := ClientConn(ct, clientCfg(func(c *Config) {
		c.Suites = []suite.ID{suite.DHERSAWith3DESEDECBCSHA}
	}))
	server := ServerConn(st, id.ServerConfig(NewPRNG(42)))
	a := handshake.NewAnatomy()
	server.SetAnatomy(a)
	go client.Handshake()
	if err := server.Handshake(); err != nil {
		t.Fatal(err)
	}
	var kxStep *handshake.Step
	for i := range a.Steps {
		if a.Steps[i].Name == "send_server_kx" {
			kxStep = &a.Steps[i]
		}
	}
	if kxStep == nil {
		t.Fatalf("no send_server_kx step; steps: %v", stepNames(a))
	}
	var sawGen, sawSign bool
	for _, c := range kxStep.Crypto {
		switch c.Name {
		case handshake.FnDHGenerateKey:
			sawGen = true
		case handshake.FnRSASign:
			sawSign = true
		}
	}
	if !sawGen || !sawSign {
		t.Fatalf("send_server_kx crypto calls: %+v", kxStep.Crypto)
	}
	// The DHE handshake pays BOTH a DH exponentiation and an RSA
	// signature — its public-key cost must exceed plain RSA's share
	// of work; at minimum the kx step itself must be expensive.
	if kxStep.Elapsed == 0 {
		t.Fatal("kx step cost not recorded")
	}
}

func TestDHEResumptionWorks(t *testing.T) {
	id := identity(t)
	cache := handshake.NewSessionCache(8)
	scfg := id.ServerConfig(NewPRNG(43))
	scfg.SessionCache = cache
	ccfg := clientCfg(func(c *Config) {
		c.Suites = []suite.ID{suite.DHERSAWithAES128CBCSHA}
	})
	client, _ := connect(t, ccfg, scfg)
	sess, _ := client.Session()

	scfg2 := id.ServerConfig(NewPRNG(44))
	scfg2.SessionCache = cache
	ccfg2 := clientCfg(func(c *Config) {
		c.Suites = []suite.ID{suite.DHERSAWithAES128CBCSHA}
		c.Session = sess
	})
	client2, _ := connect(t, ccfg2, scfg2)
	cs, _ := client2.ConnectionState()
	if !cs.Resumed {
		t.Fatal("DHE session did not resume")
	}
}

func stepNames(a *handshake.Anatomy) []string {
	var out []string
	for _, s := range a.Steps {
		out = append(out, s.Name)
	}
	return out
}
