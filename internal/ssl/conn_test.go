package ssl

import (
	"io"
	"sync"
	"testing"

	"sslperf/internal/handshake"
	"sslperf/internal/suite"
)

// Edge-case behavior of the Conn API.

func TestConnectionStateBeforeHandshake(t *testing.T) {
	ct, _ := Pipe()
	c := ClientConn(ct, clientCfg(nil))
	if _, err := c.ConnectionState(); err == nil {
		t.Fatal("state available before handshake")
	}
	if _, err := c.Session(); err == nil {
		t.Fatal("session available before handshake")
	}
}

func TestDoubleHandshakeIsIdempotent(t *testing.T) {
	id := identity(t)
	client, server := connect(t, clientCfg(nil), id.ServerConfig(NewPRNG(301)))
	if err := client.Handshake(); err != nil {
		t.Fatalf("second Handshake errored: %v", err)
	}
	if err := server.Handshake(); err != nil {
		t.Fatalf("second server Handshake errored: %v", err)
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	id := identity(t)
	client, _ := connect(t, clientCfg(nil), id.ServerConfig(NewPRNG(302)))
	client.Close()
	if _, err := client.Write([]byte("too late")); err == nil {
		t.Fatal("write after close succeeded")
	}
	// Double close is fine.
	if err := client.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestHandshakeAfterCloseFails(t *testing.T) {
	ct, _ := Pipe()
	c := ClientConn(ct, clientCfg(nil))
	c.Close()
	if err := c.Handshake(); err == nil {
		t.Fatal("handshake after close succeeded")
	}
}

func TestPartialReads(t *testing.T) {
	id := identity(t)
	client, server := connect(t, clientCfg(nil), id.ServerConfig(NewPRNG(303)))
	go client.Write([]byte("abcdefghij"))
	// Read the 10-byte record in 1-byte sips.
	var got []byte
	buf := make([]byte, 1)
	for len(got) < 10 {
		n, err := server.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf[:n]...)
	}
	if string(got) != "abcdefghij" {
		t.Fatalf("got %q", got)
	}
}

func TestEmptyWriteProducesReadableStream(t *testing.T) {
	id := identity(t)
	client, server := connect(t, clientCfg(nil), id.ServerConfig(NewPRNG(304)))
	// An empty write emits an empty record; a subsequent write must
	// still arrive intact.
	if _, err := client.Write(nil); err != nil {
		t.Fatal(err)
	}
	go client.Write([]byte("after-empty"))
	buf := make([]byte, 11)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "after-empty" {
		t.Fatalf("got %q", buf)
	}
}

func TestSessionCacheConcurrency(t *testing.T) {
	cache := handshake.NewSessionCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := []byte{byte(g), byte(i)}
				cache.Put(&handshake.Session{ID: id, Suite: suite.RSAWithRC4128MD5})
				cache.Get(id)
				cache.Len()
			}
		}(g)
	}
	wg.Wait()
	if cache.Len() > 64 {
		t.Fatalf("cache exceeded capacity: %d", cache.Len())
	}
}

func TestConcurrentSessionsShareServerIdentity(t *testing.T) {
	id := identity(t)
	cache := handshake.NewSessionCache(128)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ct, st := Pipe()
			scfg := id.ServerConfig(NewPRNG(uint64(400 + 2*g)))
			scfg.SessionCache = cache
			client := ClientConn(ct, &Config{
				Rand:               NewPRNG(uint64(401 + 2*g)),
				InsecureSkipVerify: true,
			})
			server := ServerConn(st, scfg)
			done := make(chan error, 1)
			go func() { done <- client.Handshake() }()
			if err := server.Handshake(); err != nil {
				errs <- err
				return
			}
			if err := <-done; err != nil {
				errs <- err
				return
			}
			go client.Write([]byte{byte(g)})
			buf := make([]byte, 1)
			if _, err := io.ReadFull(server, buf); err != nil || buf[0] != byte(g) {
				errs <- err
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if cache.Len() != 8 {
		t.Fatalf("cache holds %d sessions, want 8", cache.Len())
	}
}
