package ssl

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"time"

	"sslperf/internal/suite"
)

// captureStreams records both directions of a successful handshake
// driven by deterministic seeds, so adversarial replays can mutate
// real wire bytes.
func captureStreams(t *testing.T, clientSeed, serverSeed uint64) (c2s, s2c []byte) {
	t.Helper()
	id := identity(t)
	ct, st := Pipe()
	var c2sBuf, s2cBuf bytes.Buffer
	cTap := &tapRW{inner: ct, readTap: &s2cBuf, writeTap: &c2sBuf}
	client := ClientConn(cTap, &Config{
		Rand:               NewPRNG(clientSeed),
		Suites:             []suite.ID{suite.RSAWith3DESEDECBCSHA},
		InsecureSkipVerify: true,
	})
	server := ServerConn(st, id.ServerConfig(NewPRNG(serverSeed)))
	errc := make(chan error, 1)
	go func() { errc <- client.Handshake() }()
	if err := server.Handshake(); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	return c2sBuf.Bytes(), s2cBuf.Bytes()
}

// tapRW copies traffic passing through a transport.
type tapRW struct {
	inner    io.ReadWriteCloser
	readTap  *bytes.Buffer
	writeTap *bytes.Buffer
}

func (t *tapRW) Read(p []byte) (int, error) {
	n, err := t.inner.Read(p)
	t.readTap.Write(p[:n])
	return n, err
}
func (t *tapRW) Write(p []byte) (int, error) {
	t.writeTap.Write(p)
	return t.inner.Write(p)
}
func (t *tapRW) Close() error { return t.inner.Close() }

// replayTransport feeds a fixed inbound stream and discards output.
type replayTransport struct{ r *bytes.Reader }

func (r *replayTransport) Read(p []byte) (int, error)  { return r.r.Read(p) }
func (r *replayTransport) Write(p []byte) (int, error) { return len(p), nil }
func (r *replayTransport) Close() error                { return nil }

// runClientAgainst replays a server->client stream into a
// deterministic client, returning the handshake error. Panics are
// converted to errors so the sweep reports them as failures.
func runClientAgainst(clientSeed uint64, stream []byte) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("PANIC: %v", r)
		}
	}()
	client := ClientConn(&replayTransport{r: bytes.NewReader(stream)}, &Config{
		Rand:               NewPRNG(clientSeed),
		Suites:             []suite.ID{suite.RSAWith3DESEDECBCSHA},
		InsecureSkipVerify: true,
	})
	return client.Handshake()
}

// runServerAgainst replays a client->server stream into a server.
func runServerAgainst(t *testing.T, serverSeed uint64, stream []byte) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("PANIC: %v", r)
		}
	}()
	id := identity(t)
	server := ServerConn(&replayTransport{r: bytes.NewReader(stream)},
		id.ServerConfig(NewPRNG(serverSeed)))
	return server.Handshake()
}

func TestClientSurvivesTruncatedStreams(t *testing.T) {
	_, s2c := captureStreams(t, 1001, 1002)
	// Every truncation point must produce a clean error.
	step := len(s2c)/64 + 1
	for cut := 0; cut < len(s2c); cut += step {
		if err := runClientAgainst(1001, s2c[:cut]); err == nil {
			t.Fatalf("client accepted a stream truncated at %d/%d", cut, len(s2c))
		} else if len(err.Error()) > 5 && err.Error()[:5] == "PANIC" {
			t.Fatalf("truncation at %d caused %v", cut, err)
		}
	}
}

func TestServerSurvivesTruncatedStreams(t *testing.T) {
	c2s, _ := captureStreams(t, 1003, 1004)
	step := len(c2s)/64 + 1
	for cut := 0; cut < len(c2s); cut += step {
		if err := runServerAgainst(t, 1004, c2s[:cut]); err == nil {
			t.Fatalf("server accepted a stream truncated at %d/%d", cut, len(c2s))
		} else if len(err.Error()) > 5 && err.Error()[:5] == "PANIC" {
			t.Fatalf("truncation at %d caused %v", cut, err)
		}
	}
}

func TestClientRejectsBitFlips(t *testing.T) {
	_, s2c := captureStreams(t, 1005, 1006)
	// Flip one bit at a sample of positions; the handshake must fail
	// every time (transcript hashes, MACs, or parsers catch it).
	step := len(s2c)/96 + 1
	for pos := 0; pos < len(s2c); pos += step {
		mutated := append([]byte{}, s2c...)
		mutated[pos] ^= 0x40
		err := runClientAgainst(1005, mutated)
		if err == nil {
			t.Fatalf("client accepted a stream with bit flipped at %d/%d", pos, len(s2c))
		}
		if len(err.Error()) > 5 && err.Error()[:5] == "PANIC" {
			t.Fatalf("bit flip at %d caused %v", pos, err)
		}
	}
}

func TestServerRejectsBitFlips(t *testing.T) {
	c2s, _ := captureStreams(t, 1007, 1008)
	step := len(c2s)/96 + 1
	for pos := 0; pos < len(c2s); pos += step {
		mutated := append([]byte{}, c2s...)
		mutated[pos] ^= 0x40
		err := runServerAgainst(t, 1008, mutated)
		if err == nil {
			t.Fatalf("server accepted a stream with bit flipped at %d/%d", pos, len(c2s))
		}
		if len(err.Error()) > 5 && err.Error()[:5] == "PANIC" {
			t.Fatalf("bit flip at %d caused %v", pos, err)
		}
	}
}

func TestServerSurvivesGarbageStreams(t *testing.T) {
	rnd := NewPRNG(2024)
	for i := 0; i < 50; i++ {
		garbage := make([]byte, 10+i*13)
		rnd.Read(garbage)
		if err := runServerAgainst(t, uint64(3000+i), garbage); err == nil {
			t.Fatalf("server completed a handshake against garbage (%d bytes)", len(garbage))
		}
	}
}

func TestHandshakeTimeBound(t *testing.T) {
	// A pathological stream must fail promptly, not spin: a record
	// claiming the maximum length but delivering nothing.
	hdr := []byte{22, 0x03, 0x00, 0xff, 0xff}
	done := make(chan error, 1)
	go func() { done <- runClientAgainst(4000, hdr) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("accepted truncated max-length record")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handshake hung on truncated record")
	}
}
