package ssl

import (
	"testing"

	"sslperf/internal/handshake"
	"sslperf/internal/probe"
)

// stepRecorder is a Config.Probes sink that keeps the step-boundary
// and crypto events it sees, in delivery order.
type stepRecorder struct {
	steps  []probe.Step // KindStepEnter sequence
	exits  []probe.Step // KindStepExit sequence
	crypto []string     // attributed crypto fns (incl. in-step record work)
}

// Emit implements probe.Sink.
func (r *stepRecorder) Emit(e probe.Event) {
	switch e.Kind {
	case probe.KindStepEnter:
		r.steps = append(r.steps, e.Step)
	case probe.KindStepExit:
		r.exits = append(r.exits, e.Step)
	case probe.KindCrypto:
		r.crypto = append(r.crypto, e.Fn)
	case probe.KindRecordCrypto:
		if e.Step != probe.StepNone {
			r.crypto = append(r.crypto, e.Op.StepFn())
		}
	}
}

// probeHandshake runs one full server handshake with n recording
// sinks on Config.Probes plus an Anatomy, and returns both.
func probeHandshake(t *testing.T, n int) ([]*stepRecorder, *handshake.Anatomy) {
	t.Helper()
	id := identity(t)
	scfg := id.ServerConfig(NewPRNG(91))
	recs := make([]*stepRecorder, n)
	for i := range recs {
		recs[i] = &stepRecorder{}
		scfg.Probes = append(scfg.Probes, recs[i])
	}
	ct, st := Pipe()
	client := ClientConn(ct, clientCfg(nil))
	server := ServerConn(st, scfg)
	a := handshake.NewAnatomy()
	server.SetAnatomy(a)
	errs := make(chan error, 1)
	go func() { errs <- client.Handshake() }()
	if err := server.Handshake(); err != nil {
		t.Fatalf("server handshake: %v", err)
	}
	if err := <-errs; err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	client.Close()
	server.Close()
	return recs, a
}

// fullHandshakeSteps is the canonical step sequence of a full
// (non-resumed, RSA key exchange) server handshake.
var fullHandshakeSteps = []probe.Step{
	probe.StepInit,
	probe.StepGetClientHello,
	probe.StepSendServerHello,
	probe.StepSendServerCert,
	probe.StepSendServerDone,
	probe.StepGetClientKX,
	probe.StepGetFinished,
	probe.StepSendCipherSpec,
	probe.StepSendFinished,
	probe.StepServerFlush,
}

func stepsEqual(a, b []probe.Step) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestProbeFanOutIdenticalAttribution runs handshakes with 0, 1, and
// 3 user sinks and asserts every sink — and the anatomy fold riding
// the same bus — sees the identical canonical step sequence.
func TestProbeFanOutIdenticalAttribution(t *testing.T) {
	var anatomies []*handshake.Anatomy
	for _, n := range []int{0, 1, 3} {
		recs, a := probeHandshake(t, n)
		anatomies = append(anatomies, a)
		for i, r := range recs {
			if !stepsEqual(r.steps, fullHandshakeSteps) {
				t.Fatalf("n=%d sink %d saw steps %v, want %v", n, i, r.steps, fullHandshakeSteps)
			}
			if !stepsEqual(r.exits, fullHandshakeSteps) {
				t.Fatalf("n=%d sink %d exits %v do not mirror enters", n, i, r.exits)
			}
			if len(r.crypto) == 0 {
				t.Fatalf("n=%d sink %d saw no crypto events", n, i)
			}
			// Every sink on the same bus sees byte-identical streams.
			if i > 0 {
				if !stepsEqual(r.steps, recs[0].steps) || len(r.crypto) != len(recs[0].crypto) {
					t.Fatalf("n=%d sink %d diverged from sink 0", n, i)
				}
				for j := range r.crypto {
					if r.crypto[j] != recs[0].crypto[j] {
						t.Fatalf("n=%d sink %d crypto[%d] = %q, sink 0 saw %q",
							n, i, j, r.crypto[j], recs[0].crypto[j])
					}
				}
			}
		}
	}
	// The anatomy fold is identical no matter how many other sinks
	// share the bus.
	for i, a := range anatomies {
		if len(a.Steps) != len(fullHandshakeSteps) {
			t.Fatalf("run %d anatomy has %d steps, want %d", i, len(a.Steps), len(fullHandshakeSteps))
		}
		for j, st := range a.Steps {
			if st.Name != fullHandshakeSteps[j].Name() {
				t.Fatalf("run %d anatomy step %d = %q, want %q",
					i, j, st.Name, fullHandshakeSteps[j].Name())
			}
			if st.Name != anatomies[0].Steps[j].Name {
				t.Fatalf("anatomy step names diverge across sink counts")
			}
		}
	}
}

// TestProbeOffBusIsNil pins the fast path: with no telemetry, tracer,
// anatomy, or user sinks, the connection never builds a bus, so the
// record layer and FSM run the sink-free nil-receiver path.
func TestProbeOffBusIsNil(t *testing.T) {
	id := identity(t)
	client, server := connect(t, clientCfg(nil), id.ServerConfig(NewPRNG(92)))
	defer client.Close()
	defer server.Close()
	if server.bus != nil || server.layer.Probe != nil {
		t.Fatal("uninstrumented connection built a probe bus")
	}
}
