package ssl

import (
	"sslperf/internal/handshake"
	"sslperf/internal/probe"
	"sslperf/internal/record"
	"sslperf/internal/telemetry"
	"sslperf/internal/trace"
	"time"
)

// armProbes assembles the connection's probe bus for the handshake
// about to run: the anatomy fold (server side), the telemetry and
// trace sink shims when those channels are configured, any
// user-supplied Config.Probes, and the bulk-crypto observer. With
// nothing attached the bus stays nil and every hook downstream is a
// nil-receiver no-op. Called with c.mu held, after telemetryStart and
// traceStart have assigned the connection ID and handshake span.
func (c *Conn) armProbes(reg *telemetry.Registry) {
	if !c.isClient && reg != nil && c.anatomy == nil {
		// Telemetry's per-step latency histograms are folded from the
		// anatomy at handshake finish, so a server connection under a
		// registry always records one.
		c.anatomy = handshake.NewAnatomy()
	}
	sinks := make([]probe.Sink, 0, 4+len(c.cfg.Probes))
	if c.anatomy != nil {
		sinks = append(sinks, c.anatomy)
	}
	if reg != nil {
		sinks = append(sinks, telemetry.ProbeSink(reg, c.telemetryID))
	}
	if c.ct != nil {
		sinks = append(sinks, trace.ProbeSink(c.ct, c.traceHS))
	}
	if c.lc != nil {
		sinks = append(sinks, c.lc)
	}
	sinks = append(sinks, c.cfg.Probes...)
	c.baseSinks = sinks
	c.refreshBus()
}

// refreshBus rebuilds the connection's bus from the armed base sinks
// plus the bulk-crypto observer and points the record layer at it.
// Called with c.mu held (or before the connection is shared).
func (c *Conn) refreshBus() {
	sinks := c.baseSinks
	if c.cryptoObs != nil {
		sinks = append(sinks[:len(sinks):len(sinks)], bulkCryptoSink{fn: c.cryptoObs})
	}
	c.bus = probe.NewBus(sinks...)
	c.layer.Probe = c.bus
}

// bulkCryptoSink adapts a SetCryptoObserver callback to the spine:
// only bulk-phase record crypto (outside any handshake step) is
// forwarded, matching the pre-spine behavior where the handshake FSM
// claimed the finished-message work for Table 2.
type bulkCryptoSink struct {
	fn func(op record.CryptoOp, bytes int, d time.Duration)
}

// Emit implements probe.Sink.
func (s bulkCryptoSink) Emit(e probe.Event) {
	if e.Kind != probe.KindRecordCrypto || e.Step != probe.StepNone {
		return
	}
	s.fn(e.Op, e.Bytes, e.Dur)
}
