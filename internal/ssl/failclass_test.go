package ssl

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"os"
	"strings"
	"testing"

	"sslperf/internal/lifecycle"
	"sslperf/internal/probe"
	"sslperf/internal/record"
	"sslperf/internal/telemetry"
)

// timeoutTransport fails every read with a net.Error timeout.
type timeoutTransport struct{}

type timeoutError struct{}

func (timeoutError) Error() string   { return "i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

func (timeoutTransport) Read(p []byte) (int, error)  { return 0, timeoutError{} }
func (timeoutTransport) Write(p []byte) (int, error) { return len(p), nil }
func (timeoutTransport) Close() error                { return nil }

// recordBoundaries returns the byte offset past each SSL record in a
// captured stream.
func recordBoundaries(t *testing.T, stream []byte) []int {
	t.Helper()
	var ends []int
	for off := 0; off < len(stream); {
		if off+5 > len(stream) {
			t.Fatalf("truncated record header at %d", off)
		}
		n := int(stream[off+3])<<8 | int(stream[off+4])
		off += 5 + n
		if off > len(stream) {
			t.Fatalf("record at %d overruns the stream", off)
		}
		ends = append(ends, off)
	}
	return ends
}

// observedServer runs a server handshake against transport with the
// full observability stack attached — telemetry registry, lifecycle
// table, close-log — then closes the connection so the close-log line
// flushes.
func observedServer(t *testing.T, seed uint64, transport io.ReadWriteCloser) (error, *telemetry.Registry, *bytes.Buffer) {
	t.Helper()
	reg := telemetry.NewRegistry()
	var closeLog bytes.Buffer
	tab := lifecycle.NewTable(lifecycle.Options{
		CloseLog: lifecycle.NewCloseLog(&closeLog, 1),
	})
	cfg := identity(t).ServerConfig(NewPRNG(seed))
	cfg.Telemetry = reg
	cfg.Lifecycle = tab
	server := ServerConn(transport, cfg)
	err := server.Handshake()
	server.Close()
	return err, reg, &closeLog
}

// TestFailClassMapping drives the canonical failure scenarios end to
// end and asserts the telemetry fail-reason counter, the flight
// recorder's terminal event, and the close-log line all carry the
// identical canonical tag.
func TestFailClassMapping(t *testing.T) {
	c2s, _ := captureStreams(t, 5001, 5002)
	ends := recordBoundaries(t, c2s)
	if len(ends) < 4 {
		t.Fatalf("captured %d client records, want >= 4 (hello, kx, ccs, finished)", len(ends))
	}

	cases := []struct {
		name      string
		transport func() io.ReadWriteCloser
		class     probe.FailClass
		tag       string
	}{
		{
			name:      "timeout",
			transport: func() io.ReadWriteCloser { return timeoutTransport{} },
			class:     probe.FailIOTimeout,
			tag:       "io_timeout",
		},
		{
			// The stream dies after ClientHello: the server is in step
			// 7 (get_client_kx) when the read comes up empty.
			name: "eof-mid-step7",
			transport: func() io.ReadWriteCloser {
				return &replayTransport{r: bytes.NewReader(c2s[:ends[0]])}
			},
			class: probe.FailIOEOF,
			tag:   "io_eof",
		},
		{
			// A ciphertext bit flip in the client's encrypted Finished
			// record: the server detects it locally as a MAC failure.
			name: "bad-mac",
			transport: func() io.ReadWriteCloser {
				mutated := append([]byte{}, c2s...)
				mutated[ends[len(ends)-1]-3] ^= 0x40
				return &replayTransport{r: bytes.NewReader(mutated)}
			},
			class: probe.FailBadMAC,
			tag:   "bad_mac",
		},
		{
			// The peer opens with a fatal handshake_failure alert.
			name: "peer-alert",
			transport: func() io.ReadWriteCloser {
				alert := []byte{21, 3, 0, 0, 2, 2, 40}
				return &replayTransport{r: bytes.NewReader(alert)}
			},
			class: probe.FailPeerAlert,
			tag:   "peer_alert:handshake_failure",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err, reg, closeLog := observedServer(t, 5002, tc.transport())
			if err == nil {
				t.Fatal("handshake unexpectedly succeeded")
			}
			if got := Classify(err); got != tc.class {
				t.Fatalf("Classify(%v) = %v, want %v", err, got, tc.class)
			}
			if got := FailureReason(err); got != tc.tag {
				t.Fatalf("FailureReason(%v) = %q, want %q", err, got, tc.tag)
			}

			// Telemetry counted the failure under the tag.
			snap := reg.Snapshot()
			if snap.Handshakes.Failed != 1 || snap.Handshakes.FailReasons[tc.tag] != 1 {
				t.Fatalf("telemetry failed=%d reasons=%v, want 1 under %q",
					snap.Handshakes.Failed, snap.Handshakes.FailReasons, tc.tag)
			}

			// The flight recorder's terminal event names the same tag.
			var failEvents int
			for _, ev := range reg.Recorder().Events() {
				if ev.Kind == telemetry.EventHandshakeFail {
					failEvents++
					if ev.Name != tc.tag {
						t.Fatalf("flight recorder tagged %q, want %q", ev.Name, tc.tag)
					}
				}
			}
			if failEvents != 1 {
				t.Fatalf("flight recorder holds %d handshake_fail events, want 1", failEvents)
			}

			// The close-log line speaks the same taxonomy.
			line := strings.TrimSpace(closeLog.String())
			if strings.Contains(line, "\n") {
				t.Fatalf("close-log emitted more than one line:\n%s", line)
			}
			var rec map[string]any
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("close-log line is not JSON: %v\n%s", err, line)
			}
			if rec["fail_class"] != tc.class.Name() || rec["fail_tag"] != tc.tag {
				t.Fatalf("close-log class=%v tag=%v, want %s/%s",
					rec["fail_class"], rec["fail_tag"], tc.class.Name(), tc.tag)
			}
			if rec["state"] != "failed" {
				t.Fatalf("close-log state %v, want failed", rec["state"])
			}
		})
	}
}

// TestClassifyTable pins the classifier over one representative error
// per class, including the message-sniffed handshake classes the
// end-to-end scenarios above do not reach. failclasslint requires
// every probe.FailClass constant to appear here, so a new class
// cannot ship without deciding what maps onto it.
func TestClassifyTable(t *testing.T) {
	cases := []struct {
		err   error
		class probe.FailClass
		tag   string
	}{
		{nil, probe.FailNone, "none"},
		{timeoutError{}, probe.FailIOTimeout, "io_timeout"},
		{os.ErrDeadlineExceeded, probe.FailIOTimeout, "io_timeout"},
		{io.EOF, probe.FailIOEOF, "io_eof"},
		{io.ErrUnexpectedEOF, probe.FailIOEOF, "io_eof"},
		{&record.AlertError{Level: record.AlertLevelFatal, Description: record.AlertHandshakeFailure, Peer: true},
			probe.FailPeerAlert, "peer_alert:handshake_failure"},
		{&record.AlertError{Level: record.AlertLevelFatal, Description: record.AlertBadRecordMAC},
			probe.FailBadMAC, "bad_mac"},
		{&record.AlertError{Level: record.AlertLevelFatal, Description: record.AlertUnexpectedMessage},
			probe.FailRecordError, "record_error"},
		{errors.New("handshake: server finished verification failed"), probe.FailFinishedVerify, "finished_verify"},
		{errors.New("handshake: server certificate expired or not yet valid"), probe.FailCertVerify, "cert_verify"},
		{errors.New("handshake: chain link 1: signature mismatch"), probe.FailCertVerify, "cert_verify"},
		{errors.New("handshake: client version 0x0002 too old"), probe.FailVersionMismatch, "version_mismatch"},
		{errors.New("record: message too large"), probe.FailRecordError, "record_error"},
		{errors.New("handshake: expected ClientHello, got type 7"), probe.FailBadMessage, "bad_message"},
		{errors.New("handshake: malformed ClientKeyExchange"), probe.FailBadMessage, "bad_message"},
		{errors.New("something inexplicable"), probe.FailInternal, "internal"},
	}
	for _, tc := range cases {
		name := "nil"
		if tc.err != nil {
			name = tc.err.Error()
		}
		if got := Classify(tc.err); got != tc.class {
			t.Errorf("Classify(%q) = %v, want %v", name, got, tc.class)
		}
		if got := FailureReason(tc.err); got != tc.tag {
			t.Errorf("FailureReason(%q) = %q, want %q", name, got, tc.tag)
		}
	}
}

// TestFailClassSuccessPath pins the zero value: a clean handshake
// classifies as FailNone and the close-log line carries no taxonomy.
func TestFailClassSuccessPath(t *testing.T) {
	if got := Classify(nil); got != probe.FailNone {
		t.Fatalf("Classify(nil) = %v", got)
	}
	var closeLog bytes.Buffer
	tab := lifecycle.NewTable(lifecycle.Options{
		CloseLog: lifecycle.NewCloseLog(&closeLog, 1),
	})
	serverCfg := identity(t).ServerConfig(NewPRNG(6001))
	serverCfg.Lifecycle = tab
	client, server := connect(t, clientCfg(nil), serverCfg)
	client.Close()
	server.Close()

	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(closeLog.String())), &rec); err != nil {
		t.Fatalf("close-log line: %v", err)
	}
	if _, has := rec["fail_class"]; has {
		t.Fatalf("successful close carries fail_class: %v", rec)
	}
	if rec["suite"] == "" || rec["state"] != "closed" {
		t.Fatalf("successful close line %v", rec)
	}
	if tab.Snapshot(lifecycle.SnapshotOptions{}).Failed != 0 {
		t.Fatal("table counted a failure on the success path")
	}
}
