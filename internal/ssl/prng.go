package ssl

import "encoding/binary"

// PRNG is a fast, seedable xoshiro256**-based pseudorandom byte
// source. The experiments need *deterministic* randomness so runs are
// reproducible; it is NOT cryptographically secure and must never
// protect real traffic (see the package comment).
type PRNG struct {
	s [4]uint64
}

// NewPRNG returns a PRNG seeded from seed via splitmix64.
func NewPRNG(seed uint64) *PRNG {
	p := &PRNG{}
	x := seed
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range p.s {
		p.s[i] = next()
	}
	// A zero state would be degenerate; splitmix64 cannot produce
	// four zeros, but guard anyway.
	if p.s[0]|p.s[1]|p.s[2]|p.s[3] == 0 {
		p.s[0] = 1
	}
	return p
}

func rotl64(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// next produces the next 64-bit value (xoshiro256**).
func (p *PRNG) next() uint64 {
	result := rotl64(p.s[1]*5, 7) * 9
	t := p.s[1] << 17
	p.s[2] ^= p.s[0]
	p.s[3] ^= p.s[1]
	p.s[1] ^= p.s[2]
	p.s[0] ^= p.s[3]
	p.s[2] ^= t
	p.s[3] = rotl64(p.s[3], 45)
	return result
}

// Read fills buf with pseudorandom bytes. It never fails.
func (p *PRNG) Read(buf []byte) (int, error) {
	n := len(buf)
	for len(buf) >= 8 {
		binary.LittleEndian.PutUint64(buf, p.next())
		buf = buf[8:]
	}
	if len(buf) > 0 {
		var tail [8]byte
		binary.LittleEndian.PutUint64(tail[:], p.next())
		copy(buf, tail[:])
	}
	return n, nil
}
