package ssl

import (
	"errors"
	"io"
	"time"

	"sslperf/internal/handshake"
	"sslperf/internal/lifecycle"
	"sslperf/internal/probe"
	"sslperf/internal/record"
	"sslperf/internal/telemetry"
	"sslperf/internal/trace"
)

// ErrWouldBlock is the sans-IO sentinel: a NonBlockingConn call made
// all the progress it could with the bytes fed so far and needs more
// input (or its output drained) before it can continue. It is never a
// terminal error — feed more bytes and call again.
var ErrWouldBlock = record.ErrWouldBlock

// A NonBlockingConn is one end of an SSL connection with no transport
// attached: the sans-IO core for event-driven servers. Wire bytes go
// in through Feed and come out through Outgoing/ConsumeOutgoing; the
// caller owns the socket, the readiness notification, and the buffer
// shuttling. HandshakeStep advances the resumable handshake FSM until
// it either completes, fails terminally, or suspends with
// ErrWouldBlock; ReadData/WriteData move application data through the
// negotiated channel the same way.
//
// Unlike Conn, a NonBlockingConn performs no locking: it is designed
// for a single event-loop goroutine and all methods must be called
// from one goroutine at a time. Every observability surface a Conn
// feeds (telemetry registry, tracer sampling, /debug/anatomy folds,
// the lifecycle table with its new suspended state) is wired
// identically here, and handshake-step attribution pauses across
// suspensions so parked wall-time never pollutes step durations.
type NonBlockingConn struct {
	core     *record.Core
	cfg      *Config
	isClient bool

	srv *handshake.ServerFSM
	cli *handshake.ClientFSM

	remote       string
	lcRegistered bool

	handshakeDone bool
	hsStarted     bool
	hsErr         error
	hsStart       time.Time
	result        *handshake.Result
	anatomy       *handshake.Anatomy
	telemetryID   uint64

	bus       *probe.Bus
	baseSinks []probe.Sink
	cryptoObs func(op record.CryptoOp, bytes int, d time.Duration)

	lc *lifecycle.Conn

	ct           *trace.ConnTrace
	traceHS      uint64
	traceOutcome string

	// readArr owns the bytes of the most recent application record;
	// readBuf is the unconsumed tail of it. A stable backing array
	// keeps the steady-state read path allocation-free.
	readArr []byte
	readBuf []byte
	eof     bool
	closed  bool
}

// NonBlockingClient builds the client end of a sans-IO connection.
func NonBlockingClient(cfg *Config) *NonBlockingConn {
	return &NonBlockingConn{core: record.NewCore(), cfg: cfg, isClient: true}
}

// NonBlockingServer builds the server end of a sans-IO connection.
func NonBlockingServer(cfg *Config) *NonBlockingConn {
	return &NonBlockingConn{core: record.NewCore(), cfg: cfg, isClient: false}
}

// SetRemoteAddr records the peer address for the lifecycle table
// entry. Call before the first HandshakeStep/Feed; later calls are
// ignored (the entry is registered lazily on first use, since a
// sans-IO core has no transport to ask).
func (c *NonBlockingConn) SetRemoteAddr(addr string) { c.remote = addr }

// ensureRegistered creates the lifecycle entry on first use.
func (c *NonBlockingConn) ensureRegistered() {
	if c.lcRegistered {
		return
	}
	c.lcRegistered = true
	if c.cfg.Lifecycle != nil {
		c.lc = c.cfg.Lifecycle.Register(c.remote)
	}
}

// Feed hands the connection ciphertext read from the transport. The
// bytes are copied; the caller's buffer can be reused immediately.
func (c *NonBlockingConn) Feed(b []byte) {
	c.ensureRegistered()
	c.core.Feed(b)
}

// Buffered reports how many fed bytes are not yet consumed.
func (c *NonBlockingConn) Buffered() int { return c.core.Buffered() }

// Outgoing returns the ciphertext waiting to be written to the
// transport. The slice is valid until the next method call; write
// some prefix of it, then ConsumeOutgoing what was written.
func (c *NonBlockingConn) Outgoing() []byte { return c.core.Outgoing() }

// ConsumeOutgoing discards n sent bytes from the outgoing buffer.
func (c *NonBlockingConn) ConsumeOutgoing(n int) { c.core.ConsumeOutgoing(n) }

// HandshakeDone reports whether the handshake has completed.
func (c *NonBlockingConn) HandshakeDone() bool { return c.handshakeDone }

// LifecycleEntry returns the connection's live table entry, nil when
// no Config.Lifecycle is attached or nothing has run yet.
func (c *NonBlockingConn) LifecycleEntry() *lifecycle.Conn { return c.lc }

// SetAnatomy installs a recorder that will capture the server-side
// handshake anatomy (Table 2). Must be called before the first
// HandshakeStep.
func (c *NonBlockingConn) SetAnatomy(a *handshake.Anatomy) { c.anatomy = a }

// SetTrace attaches a pre-started connection trace (e.g. one begun at
// TCP accept). Must be called before the first HandshakeStep; a nil
// ConnTrace is ignored.
func (c *NonBlockingConn) SetTrace(ct *trace.ConnTrace) {
	if ct != nil {
		c.ct = ct
	}
}

// Trace returns the connection's sampled trace, nil when unsampled.
func (c *NonBlockingConn) Trace() *trace.ConnTrace { return c.ct }

// Stats returns the record-layer counters.
func (c *NonBlockingConn) Stats() record.Stats { return c.core.Stats }

// SetCryptoObserver routes bulk-phase record-layer crypto timings to
// fn; pass nil to remove. See Conn.SetCryptoObserver.
func (c *NonBlockingConn) SetCryptoObserver(fn func(op record.CryptoOp, bytes int, d time.Duration)) {
	c.cryptoObs = fn
	c.refreshBus()
}

// armProbes assembles the probe bus exactly as the blocking Conn
// does: anatomy fold (server side), telemetry and trace sink shims,
// the lifecycle entry, user probes, and the bulk-crypto observer.
func (c *NonBlockingConn) armProbes(reg *telemetry.Registry) {
	if !c.isClient && reg != nil && c.anatomy == nil {
		c.anatomy = handshake.NewAnatomy()
	}
	sinks := make([]probe.Sink, 0, 4+len(c.cfg.Probes))
	if c.anatomy != nil {
		sinks = append(sinks, c.anatomy)
	}
	if reg != nil {
		sinks = append(sinks, telemetry.ProbeSink(reg, c.telemetryID))
	}
	if c.ct != nil {
		sinks = append(sinks, trace.ProbeSink(c.ct, c.traceHS))
	}
	if c.lc != nil {
		sinks = append(sinks, c.lc)
	}
	sinks = append(sinks, c.cfg.Probes...)
	c.baseSinks = sinks
	c.refreshBus()
}

// refreshBus rebuilds the bus from the armed base sinks plus the
// bulk-crypto observer and points the record core at it.
func (c *NonBlockingConn) refreshBus() {
	sinks := c.baseSinks
	if c.cryptoObs != nil {
		sinks = append(sinks[:len(sinks):len(sinks)], bulkCryptoSink{fn: c.cryptoObs})
	}
	c.bus = probe.NewBus(sinks...)
	c.core.SetProbe(c.bus)
}

// startHandshake performs the one-time setup the blocking path does in
// handshakeLocked — telemetry open, lifecycle transition, tracer
// sampling, bus assembly — then constructs the FSM.
func (c *NonBlockingConn) startHandshake() error {
	c.hsStarted = true
	c.hsStart = time.Now()
	tel := c.cfg.Telemetry
	if tel != nil {
		c.telemetryID = telemetryStartFn(tel, c.isClient)
	}
	c.lc.HandshakeStart()
	if c.ct != nil || c.cfg.Tracer != nil {
		c.ct, c.traceHS = traceStartFn(c.cfg.Tracer, c.ct, c.telemetryID, c.isClient)
	}
	c.armProbes(tel)
	var err error
	if c.isClient {
		c.cli, err = handshake.NewClientFSM(c.core, &handshake.ClientConfig{
			Rand:               c.cfg.rand(),
			Suites:             c.cfg.Suites,
			Time:               c.cfg.Time,
			Version:            c.cfg.Version,
			Session:            c.cfg.Session,
			RootCert:           c.cfg.RootCert,
			ServerName:         c.cfg.ServerName,
			InsecureSkipVerify: c.cfg.InsecureSkipVerify,
		})
	} else {
		// The anatomy (when any) is already a sink on the bus, so the
		// FSM gets the bus alone.
		c.srv, err = handshake.NewServerFSM(c.core, &handshake.ServerConfig{
			Key:        c.cfg.Key,
			Decrypter:  c.cfg.Decrypter,
			CertDER:    c.cfg.CertDER,
			Chain:      c.cfg.CertChain,
			Rand:       c.cfg.rand(),
			Cache:      c.cfg.SessionCache,
			Suites:     c.cfg.Suites,
			Time:       c.cfg.Time,
			MaxVersion: c.cfg.Version,
			Probe:      c.bus,
		}, nil)
	}
	return err
}

func (c *NonBlockingConn) stepFSM() error {
	if c.isClient {
		return c.cli.Step()
	}
	return c.srv.Step()
}

// HandshakeStep advances the handshake as far as the fed bytes allow.
// It returns nil once the handshake has completed (and on every call
// thereafter), ErrWouldBlock when more input is needed — drain
// Outgoing, feed more ciphertext, call again — or a terminal error,
// which is sticky and has already queued a fatal alert in Outgoing.
// Probe-step attribution suspends across ErrWouldBlock, so parked
// time never enters /debug/anatomy or the telemetry step histograms.
func (c *NonBlockingConn) HandshakeStep() error {
	if c.handshakeDone {
		return nil
	}
	if c.hsErr != nil {
		return c.hsErr
	}
	if c.closed {
		return errors.New("ssl: connection closed")
	}
	c.ensureRegistered()
	var err error
	if !c.hsStarted {
		if err = c.startHandshake(); err == nil {
			err = c.stepFSM()
		}
	} else {
		c.lc.Resume()
		err = c.stepFSM()
	}
	if err == ErrWouldBlock {
		c.lc.Suspend()
		return err
	}
	d := time.Since(c.hsStart)
	if err == nil {
		if c.isClient {
			c.result = c.cli.Result()
		} else {
			c.result = c.srv.Result()
		}
	}
	if tel := c.cfg.Telemetry; tel != nil {
		telemetryFinishFn(tel, c.telemetryID, c.result, c.anatomy, d, err)
	}
	if c.ct != nil {
		c.traceOutcome = traceFinishFn(c.ct, c.traceHS, c.result, err)
	}
	if err != nil {
		c.hsErr = err
		c.lc.Failed(Classify(err), FailureReason(err), err.Error(), d)
		return err
	}
	c.lc.Established(c.result.Suite.Name, c.result.Session.Version, c.result.Resumed, d)
	c.handshakeDone = true
	return nil
}

// ConnectionState returns the post-handshake state.
func (c *NonBlockingConn) ConnectionState() (ConnectionState, error) {
	if !c.handshakeDone {
		return ConnectionState{}, errors.New("ssl: handshake has not completed")
	}
	return ConnectionState{
		Suite:     c.result.Suite,
		Resumed:   c.result.Resumed,
		SessionID: c.result.Session.ID,
		Version:   c.result.Session.Version,
	}, nil
}

// Session returns the resumable session state; valid after the
// handshake completes.
func (c *NonBlockingConn) Session() (*handshake.Session, error) {
	if !c.handshakeDone {
		return nil, errors.New("ssl: handshake has not completed")
	}
	return c.result.Session, nil
}

// ReadData copies decrypted application data into p. Before the
// handshake completes it advances the handshake instead (so a pure
// read-driven event loop works); once established it decodes fed
// records, returning ErrWouldBlock when no complete record is
// buffered and io.EOF after the peer's close_notify. Post-handshake
// handshake records (e.g. HelloRequest) are skipped; renegotiation is
// not supported.
func (c *NonBlockingConn) ReadData(p []byte) (int, error) {
	if !c.handshakeDone {
		if err := c.HandshakeStep(); err != nil {
			return 0, err
		}
	}
	for len(c.readBuf) == 0 {
		if c.eof {
			return 0, io.EOF
		}
		typ, payload, err := c.core.ReadRecord()
		if err != nil {
			if ae, ok := err.(*record.AlertError); ok &&
				ae.Description == record.AlertCloseNotify {
				c.eof = true
				return 0, io.EOF
			}
			return 0, err
		}
		switch typ {
		case record.TypeApplicationData:
			// The payload aliases the core's incoming buffer, which the
			// next Feed compacts — keep an owned copy in the stable
			// backing array.
			c.readArr = append(c.readArr[:0], payload...)
			c.readBuf = c.readArr
		case record.TypeHandshake:
		default:
			return 0, errors.New("ssl: unexpected record type " + typ.String())
		}
	}
	n := copy(p, c.readBuf)
	c.readBuf = c.readBuf[n:]
	return n, nil
}

// WriteData seals p into application-data records in the outgoing
// buffer (fragmenting as needed). It never blocks: the caller flushes
// Outgoing to the transport at its own pace.
func (c *NonBlockingConn) WriteData(p []byte) (int, error) {
	if c.closed {
		return 0, errors.New("ssl: connection closed")
	}
	if !c.handshakeDone {
		if err := c.HandshakeStep(); err != nil {
			return 0, err
		}
	}
	if err := c.core.WriteRecord(record.TypeApplicationData, p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Close queues close_notify (when established) and finalizes the
// observability surfaces. The alert bytes land in Outgoing — flush
// them before dropping the transport if a clean close matters.
func (c *NonBlockingConn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.ensureRegistered()
	c.lc.Draining()
	if c.handshakeDone {
		c.core.SendClose()
	}
	if c.telemetryID != 0 {
		c.cfg.Telemetry.Event(c.telemetryID, telemetry.EventClose, "", "", 0)
	}
	if c.ct != nil {
		outcome := c.traceOutcome
		if outcome == "" {
			outcome = "closed_before_handshake"
		}
		c.ct.Finish(outcome)
	}
	c.lc.Close()
	c.lc = nil
	return nil
}
