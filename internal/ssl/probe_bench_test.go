package ssl

import (
	"testing"

	"sslperf/internal/lifecycle"
	"sslperf/internal/slo"
	"sslperf/internal/telemetry"
	"sslperf/internal/trace"
)

// benchHandshakeProbed measures the probe spine's fan-out cost at its
// three deployment points: no sinks at all (the bus is nil and every
// hook is a pointer test), the production 1-in-16 trace sampling, and
// every sink adapter at once — anatomy fold + telemetry counters +
// always-on span building + the lifecycle conn-table entry riding one
// bus. The figures land in docs/BENCH_probe.json via make bench.
func benchHandshakeProbed(b *testing.B, reg *telemetry.Registry, tracer *trace.Tracer, tab *lifecycle.Table) {
	ccfg, scfg := benchConfigs(b, nil)
	scfg.Telemetry = reg
	scfg.Tracer = tracer
	scfg.Lifecycle = tab
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct, st := Pipe()
		client, server := ClientConn(ct, ccfg), ServerConn(st, scfg)
		errs := make(chan error, 1)
		go func() { errs <- client.Handshake() }()
		if err := server.Handshake(); err != nil {
			b.Fatal(err)
		}
		if err := <-errs; err != nil {
			b.Fatal(err)
		}
		server.Close()
		client.Close()
	}
}

func BenchmarkHandshakeProbeOff(b *testing.B) { benchHandshakeProbed(b, nil, nil, nil) }

func BenchmarkHandshakeProbeSampled16(b *testing.B) {
	benchHandshakeProbed(b, nil, trace.NewTracer(trace.Config{SampleEvery: 16}), nil)
}

func BenchmarkHandshakeProbeAll(b *testing.B) {
	tab := lifecycle.NewTable(lifecycle.Options{SLO: slo.New(slo.Config{})})
	benchHandshakeProbed(b, telemetry.NewRegistry(), trace.NewTracer(trace.Config{SampleEvery: 1}), tab)
}
