package ssl

import (
	"io"
	"testing"

	"sslperf/internal/pathlen"
	"sslperf/internal/probe"
	"sslperf/internal/record"
	"sslperf/internal/suite"
)

// BenchmarkBulkPath measures the server-side bulk transfer path per
// suite — the workload behind docs/BENCH_bulk.json and the live
// /debug/pathlength table. A pathlen collector rides the server's
// spine; after the timed transfer its fold yields the cipher and MAC
// cycles/byte (and, via the abstract-instruction CPI, the measured
// instructions/byte) that the baseline bulk-path shape gates: RC4 must
// stay cheaper per byte than AES and MD5 cheaper than SHA-1, the
// ordering the paper's Tables 11/12 report.
//
// Each result also reports the syscall story the flight work is
// about: writes/record (transport writes per sealed record — 2 on the
// legacy header+body path, 1 on the contiguous seal, a fraction on
// the vectored path) and records/s. The "-vec" variants push 1 MiB
// application writes through the flight pipeline — fragmented
// zero-copy, MACs pipelined, one vectored flush per 64-record window
// — and the bulk shape gate holds their MB/s at or above the
// record-at-a-time results'.
func BenchmarkBulkPath(b *testing.B) {
	for _, name := range []string{
		"RC4-MD5", "RC4-SHA", "DES-CBC-SHA", "DES-CBC3-SHA",
		"AES128-SHA", "AES256-SHA", "NULL-MD5",
	} {
		b.Run(name, func(b *testing.B) { benchBulkPath(b, name, bulkRecord) })
	}
	for _, name := range []string{"RC4-MD5", "AES128-SHA"} {
		b.Run(name+"-seq1m", func(b *testing.B) { benchBulkPath(b, name, bulkSeq) })
		b.Run(name+"-vec", func(b *testing.B) { benchBulkPath(b, name, bulkVec) })
	}
}

// Bulk benchmark modes: one 16 KiB record per write (the historical
// shape), 1 MiB writes through the sequential record-at-a-time path
// (flight disabled — the vectored gate's baseline), and 1 MiB writes
// through the flight pipeline.
type bulkMode int

const (
	bulkRecord bulkMode = iota
	bulkSeq
	bulkVec
)

const (
	bulkChunk  = 16384             // one max-size record per write
	bulkFlight = 64 * record.MaxFragment // one full flight window per write
)

func benchBulkPath(b *testing.B, suiteName string, mode bulkMode) {
	s, err := suite.ByName(suiteName)
	if err != nil {
		b.Fatal(err)
	}
	col := pathlen.NewCollector()
	id := identity(b)
	scfg := id.ServerConfig(NewPRNG(77))
	scfg.Suites = []suite.ID{s.ID}
	scfg.Probes = []probe.Sink{col}
	if mode == bulkSeq {
		scfg.BulkPipelineWidth = -1
	}
	ccfg := clientCfg(func(c *Config) { c.Suites = []suite.ID{s.ID} })
	client, server := connect(b, ccfg, scfg)
	defer client.Close()
	defer server.Close()

	drained := make(chan struct{})
	go func() {
		defer close(drained)
		io.Copy(io.Discard, client)
	}()

	chunk := bulkChunk
	if mode != bulkRecord {
		chunk = bulkFlight
	}
	payload := make([]byte, chunk)
	for i := range payload {
		payload[i] = byte(i)
	}
	// Drop the handshake's contribution so the fold is pure bulk.
	col.Reset()
	before := server.Stats()
	b.SetBytes(int64(chunk))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := server.Write(payload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()

	snap := col.Snapshot()
	ciph, ok := snap.Prim(s.CipherAlgo)
	if !ok {
		b.Fatalf("no %s row in pathlen snapshot", s.CipherAlgo)
	}
	mac, ok := snap.Prim(s.MAC.String())
	if !ok {
		b.Fatalf("no %s row in pathlen snapshot", s.MAC.String())
	}
	b.ReportMetric(ciph.CyclesPerByte, "cipher-cyc/B")
	b.ReportMetric(mac.CyclesPerByte, "mac-cyc/B")
	if ciph.InstrPerByte > 0 {
		b.ReportMetric(ciph.InstrPerByte, "cipher-instr/B")
	}
	if mac.InstrPerByte > 0 {
		b.ReportMetric(mac.InstrPerByte, "mac-instr/B")
	}
	after := server.Stats()
	records := after.RecordsWritten - before.RecordsWritten
	writes := after.WriteCalls - before.WriteCalls
	if records > 0 {
		b.ReportMetric(float64(writes)/float64(records), "writes/record")
	}
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)*float64(chunk)/1e6/elapsed, "MB/s")
		b.ReportMetric(float64(records)/elapsed, "records/s")
	}

	// Close the server first: its close_notify wakes the drain
	// goroutine out of client.Read (which holds the client Conn's
	// mutex while parked), so client.Close can then take the lock.
	server.Close()
	<-drained
	client.Close()

	if snap.BytesOut == 0 {
		b.Fatal("collector saw no outbound bytes")
	}
}
