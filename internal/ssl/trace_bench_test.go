package ssl

import (
	"testing"

	"sslperf/internal/trace"
)

// benchHandshakeTraced is benchHandshake with a tracer on the server
// side: the tracing-off run is the baseline the BENCH_trace.json
// overhead figures compare against, SampleEvery=16 is the documented
// production setting, and SampleEvery=1 is the worst case (every
// handshake records ~40 spans and folds into the profiler).
func benchHandshakeTraced(b *testing.B, tracer *trace.Tracer) {
	ccfg, scfg := benchConfigs(b, nil)
	scfg.Tracer = tracer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct, st := Pipe()
		client, server := ClientConn(ct, ccfg), ServerConn(st, scfg)
		errs := make(chan error, 1)
		go func() { errs <- client.Handshake() }()
		if err := server.Handshake(); err != nil {
			b.Fatal(err)
		}
		if err := <-errs; err != nil {
			b.Fatal(err)
		}
		server.Close()
		client.Close()
	}
}

func BenchmarkHandshakeTraceOff(b *testing.B) { benchHandshakeTraced(b, nil) }

func BenchmarkHandshakeTraceSampled16(b *testing.B) {
	benchHandshakeTraced(b, trace.NewTracer(trace.Config{SampleEvery: 16}))
}

func BenchmarkHandshakeTraceAlways(b *testing.B) {
	benchHandshakeTraced(b, trace.NewTracer(trace.Config{SampleEvery: 1}))
}
