package ssl

import (
	"io"
	"testing"
	"time"

	"sslperf/internal/rsa"
	"sslperf/internal/x509lite"
)

func TestListenDial(t *testing.T) {
	id := identity(t)
	scfg := id.ServerConfig(NewPRNG(501))
	ln, err := Listen("tcp", "127.0.0.1:0", scfg)
	if err != nil {
		t.Skip("no loopback:", err)
	}
	defer ln.Close()

	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(conn, buf); err != nil {
			done <- err
			return
		}
		_, err = conn.Write(buf)
		done <- err
	}()

	conn, err := Dial("tcp", ln.Addr().String(), clientCfg(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Dial completes the handshake eagerly.
	if _, err := conn.ConnectionState(); err != nil {
		t.Fatal("Dial returned before handshake completed")
	}
	if _, err := conn.Write([]byte("round")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "round" {
		t.Fatalf("echo = %q", buf)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestDialHandshakeFailureClosesSocket(t *testing.T) {
	id := identity(t)
	scfg := id.ServerConfig(NewPRNG(502))
	ln, err := Listen("tcp", "127.0.0.1:0", scfg)
	if err != nil {
		t.Skip("no loopback:", err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err == nil {
			c.Handshake() // will fail on name mismatch alert
			c.Close()
		}
	}()
	// Wrong server name: client must fail and return an error.
	if _, err := Dial("tcp", ln.Addr().String(), &Config{
		Rand: NewPRNG(503), ServerName: "not-the-server",
	}); err == nil {
		t.Fatal("Dial succeeded despite name mismatch")
	}
}

// TestCertificateChain exercises a 3-level chain: root CA ->
// intermediate CA -> server leaf, with the client trusting only the
// root.
func TestCertificateChain(t *testing.T) {
	now := time.Now()
	nb, na := now.Add(-time.Hour), now.Add(time.Hour)
	rootKey, err := rsa.GenerateKey(NewPRNG(510), 512)
	if err != nil {
		t.Fatal(err)
	}
	rootCert, err := x509lite.Create(NewPRNG(511), "root-ca", &rootKey.PublicKey,
		"root-ca", rootKey, nb, na)
	if err != nil {
		t.Fatal(err)
	}
	interKey, err := rsa.GenerateKey(NewPRNG(512), 512)
	if err != nil {
		t.Fatal(err)
	}
	interCert, err := x509lite.Create(NewPRNG(513), "intermediate-ca",
		&interKey.PublicKey, "root-ca", rootKey, nb, na)
	if err != nil {
		t.Fatal(err)
	}
	leafKey, err := rsa.GenerateKey(NewPRNG(514), 512)
	if err != nil {
		t.Fatal(err)
	}
	leafCert, err := x509lite.Create(NewPRNG(515), "chained.example",
		&leafKey.PublicKey, "intermediate-ca", interKey, nb, na)
	if err != nil {
		t.Fatal(err)
	}

	run := func(chain [][]byte, root *x509lite.Certificate) error {
		ct, st := Pipe()
		client := ClientConn(ct, &Config{
			Rand:       NewPRNG(516),
			RootCert:   root,
			ServerName: "chained.example",
		})
		server := ServerConn(st, &Config{
			Rand:      NewPRNG(517),
			Key:       leafKey,
			CertDER:   leafCert.Raw,
			CertChain: chain,
		})
		errc := make(chan error, 1)
		go func() { errc <- server.Handshake() }()
		cerr := client.Handshake()
		<-errc
		return cerr
	}

	// With the intermediate presented, the chain verifies to the root.
	if err := run([][]byte{interCert.Raw}, rootCert); err != nil {
		t.Fatalf("chain handshake failed: %v", err)
	}
	// Without the intermediate, the leaf does not chain to the root.
	if err := run(nil, rootCert); err == nil {
		t.Fatal("missing intermediate accepted")
	}
	// With the wrong root, verification fails.
	otherKey, _ := rsa.GenerateKey(NewPRNG(518), 512)
	otherRoot, _ := x509lite.Create(NewPRNG(519), "other-root",
		&otherKey.PublicKey, "other-root", otherKey, nb, na)
	if err := run([][]byte{interCert.Raw}, otherRoot); err == nil {
		t.Fatal("wrong root accepted")
	}
}
