package ssl

import (
	"io"
	"sync"
	"testing"

	"sslperf/internal/handshake"
	"sslperf/internal/telemetry"
)

// TestTelemetryHandshakeEmission checks a single instrumented
// connection populates counters, step histograms, and the flight
// recorder with the full step-by-step trace.
func TestTelemetryHandshakeEmission(t *testing.T) {
	id := identity(t)
	reg := telemetry.NewRegistry()
	scfg := id.ServerConfig(NewPRNG(8))
	scfg.Telemetry = reg
	ccfg := clientCfg(func(c *Config) { c.Telemetry = reg })
	client, server := connect(t, ccfg, scfg)

	// Push a little application data through so byte counters move.
	go func() { client.Write([]byte("hello telemetry")) }()
	buf := make([]byte, 64)
	if _, err := io.ReadAtLeast(server, buf, 5); err != nil {
		t.Fatal(err)
	}
	client.Close()
	server.Close()

	s := reg.Snapshot()
	if s.Connections != 2 {
		t.Fatalf("connections = %d, want 2 (client+server)", s.Connections)
	}
	if s.Handshakes.Full != 2 || s.Handshakes.Failed != 0 {
		t.Fatalf("handshakes = %+v", s.Handshakes)
	}
	if len(s.Handshakes.BySuite) == 0 {
		t.Fatal("no suite counters")
	}
	if s.IO.BytesIn == 0 || s.IO.BytesOut == 0 || s.IO.RecordsIn == 0 {
		t.Fatalf("io counters empty: %+v", s.IO)
	}
	if s.FullLatency.Count != 2 || s.FullLatency.Mean == 0 {
		t.Fatalf("latency histogram = %+v", s.FullLatency)
	}
	// Server-side anatomy must have produced the Table 2 steps.
	stepNames := map[string]bool{}
	for _, st := range s.Steps {
		stepNames[st.Name] = true
		if st.Latency.Count == 0 {
			t.Fatalf("step %q has empty histogram", st.Name)
		}
	}
	for _, want := range []string{"init", "get_client_hello", "send_server_hello",
		"get_client_kx", "send_finished", "server_flush"} {
		if !stepNames[want] {
			t.Fatalf("missing step %q in %v", want, stepNames)
		}
	}

	// Flight recorder: the server connection's trace must show the
	// handshake lifecycle in order.
	var serverConn uint64
	for _, ev := range reg.Recorder().Events() {
		if ev.Kind == telemetry.EventHandshakeStart && ev.Detail == "server" {
			serverConn = ev.Conn
		}
	}
	if serverConn == 0 {
		t.Fatal("no server handshake_start event")
	}
	trace := reg.Recorder().ConnEvents(serverConn)
	var kinds []telemetry.EventKind
	for _, ev := range trace {
		kinds = append(kinds, ev.Kind)
	}
	if kinds[0] != telemetry.EventHandshakeStart {
		t.Fatalf("trace starts with %v", kinds[0])
	}
	var sawStep, sawCrypto, sawDone, sawClose bool
	for _, k := range kinds {
		switch k {
		case telemetry.EventStepStart:
			sawStep = true
		case telemetry.EventCrypto:
			sawCrypto = true
		case telemetry.EventHandshakeDone:
			sawDone = true
		case telemetry.EventClose:
			sawClose = true
		}
	}
	if !sawStep || !sawCrypto || !sawDone || !sawClose {
		t.Fatalf("incomplete trace: step=%v crypto=%v done=%v close=%v (%v)",
			sawStep, sawCrypto, sawDone, sawClose, kinds)
	}
}

// TestTelemetryCountsFailures checks a failing handshake lands in the
// failure counter with a reason tag and a handshake_fail event.
func TestTelemetryCountsFailures(t *testing.T) {
	id := identity(t)
	reg := telemetry.NewRegistry()
	scfg := id.ServerConfig(NewPRNG(9))
	scfg.Telemetry = reg

	ct, st := Pipe()
	server := ServerConn(st, scfg)
	done := make(chan struct{})
	go func() {
		defer close(done)
		server.Handshake() // will fail: the peer is not speaking SSL
	}()
	ct.Write([]byte("GET / HTTP/1.0\r\n\r\nplaintext, not a ClientHello"))
	<-done
	ct.Close()

	s := reg.Snapshot()
	if s.Handshakes.Failed != 1 {
		t.Fatalf("failed = %d, want 1", s.Handshakes.Failed)
	}
	if len(s.Handshakes.FailReasons) != 1 {
		t.Fatalf("fail reasons = %v", s.Handshakes.FailReasons)
	}
	var sawFail bool
	for _, ev := range reg.Recorder().Events() {
		if ev.Kind == telemetry.EventHandshakeFail {
			sawFail = true
			if ev.Name == "" || ev.Detail == "" {
				t.Fatalf("fail event missing reason/detail: %+v", ev)
			}
		}
	}
	if !sawFail {
		t.Fatal("no handshake_fail event recorded")
	}
}

// TestTelemetryConcurrentConnections drives many handshakes in
// parallel into one shared registry — the -race acceptance test for
// live emission.
func TestTelemetryConcurrentConnections(t *testing.T) {
	id := identity(t)
	reg := telemetry.NewRegistrySize(512)
	cache := handshake.NewSessionCache(64)
	const conns = 16

	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			scfg := id.ServerConfig(NewPRNG(uint64(100 + i)))
			scfg.Telemetry = reg
			scfg.SessionCache = cache
			ccfg := clientCfg(func(c *Config) {
				c.Rand = NewPRNG(uint64(200 + i))
				c.Telemetry = reg
			})
			ct, st := Pipe()
			client, server := ClientConn(ct, ccfg), ServerConn(st, scfg)
			errs := make(chan error, 1)
			go func() { errs <- client.Handshake() }()
			if err := server.Handshake(); err != nil {
				t.Errorf("server %d: %v", i, err)
				return
			}
			if err := <-errs; err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			go client.Write([]byte("ping"))
			buf := make([]byte, 4)
			io.ReadFull(server, buf)
			client.Close()
			server.Close()
		}(i)
	}
	wg.Wait()

	s := reg.Snapshot()
	if s.Connections != 2*conns {
		t.Fatalf("connections = %d, want %d", s.Connections, 2*conns)
	}
	if s.Handshakes.Full != 2*conns {
		t.Fatalf("full handshakes = %d, want %d", s.Handshakes.Full, 2*conns)
	}
	if s.FullLatency.Count != 2*conns {
		t.Fatalf("latency observations = %d", s.FullLatency.Count)
	}
	for _, st := range s.Steps {
		if st.Name == "init" && st.Latency.Count != conns {
			t.Fatalf("init step count = %d, want %d", st.Latency.Count, conns)
		}
	}
}
