package ssl

import (
	"errors"
	"io"
	"net"
	"os"
	"strings"

	"sslperf/internal/probe"
	"sslperf/internal/record"
)

// Classify maps a handshake/connection error onto the canonical
// probe.FailClass taxonomy. Every error-reporting surface — the
// telemetry FailReasons counters, the flight recorder, the lifecycle
// close-log, sslserver's failure lines — classifies through this one
// function, so the same broken handshake carries the same class
// everywhere.
func Classify(err error) probe.FailClass {
	if err == nil {
		return probe.FailNone
	}
	var ae *record.AlertError
	if errors.As(err, &ae) {
		if ae.Peer {
			return probe.FailPeerAlert
		}
		if ae.Description == record.AlertBadRecordMAC {
			return probe.FailBadMAC
		}
		return probe.FailRecordError
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() || errors.Is(err, os.ErrDeadlineExceeded) {
		return probe.FailIOTimeout
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return probe.FailIOEOF
	}
	var oe *net.OpError
	if errors.As(err, &oe) {
		// Non-timeout transport errors (reset, broken pipe): the peer
		// or the network went away.
		return probe.FailIOEOF
	}
	// The handshake package reports protocol failures as plain errors;
	// sniff the stable message prefixes. New handshake error sites
	// should keep these substrings (the fail-class mapping test pins
	// one representative per class).
	msg := err.Error()
	switch {
	case strings.Contains(msg, "finished verification failed"):
		return probe.FailFinishedVerify
	case strings.Contains(msg, "certificate"),
		strings.Contains(msg, "chain link"),
		strings.Contains(msg, "intermediate"):
		return probe.FailCertVerify
	case strings.Contains(msg, "version"):
		return probe.FailVersionMismatch
	case strings.Contains(msg, "record:"):
		return probe.FailRecordError
	case strings.Contains(msg, "expected "),
		strings.Contains(msg, "malformed"),
		strings.Contains(msg, "unexpected"),
		strings.Contains(msg, "too old"),
		strings.Contains(msg, "wrong length"):
		return probe.FailBadMessage
	default:
		return probe.FailInternal
	}
}

// FailureReason returns the stable, low-cardinality failure tag for
// err: the fail class's canonical name, refined with the alert name
// when the peer said why (peer_alert:bad_record_mac, ...). Telemetry
// counters, the close-log, and cmd/sslserver all tag through it so
// counters and logs agree.
func FailureReason(err error) string {
	class := Classify(err)
	if class == probe.FailPeerAlert {
		var ae *record.AlertError
		if errors.As(err, &ae) {
			return class.Name() + ":" + record.AlertName(ae.Description)
		}
	}
	return class.Name()
}
