package ssl

import (
	"errors"
	"io"
	"sync"
	"time"
)

// pipeHalf is one direction of the in-memory transport: an unbounded
// buffer with blocking reads, so a writer never stalls — the analogue
// of the memory buffers the paper's standalone ssltest relays
// messages through.
type pipeHalf struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte
	closed bool
	// waited accumulates time readers spent blocked waiting for
	// data. Measurement code subtracts it so transport stalls are
	// not charged to SSL processing.
	waited time.Duration
}

func newPipeHalf() *pipeHalf {
	h := &pipeHalf{}
	h.cond = sync.NewCond(&h.mu)
	return h
}

func (h *pipeHalf) write(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0, errors.New("ssl: write on closed pipe")
	}
	h.buf = append(h.buf, p...)
	h.cond.Broadcast()
	return len(p), nil
}

func (h *pipeHalf) read(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.buf) == 0 && !h.closed {
		start := time.Now()
		for len(h.buf) == 0 && !h.closed {
			h.cond.Wait()
		}
		h.waited += time.Since(start)
	}
	if len(h.buf) == 0 {
		return 0, io.EOF
	}
	n := copy(p, h.buf)
	h.buf = h.buf[n:]
	return n, nil
}

func (h *pipeHalf) close() {
	h.mu.Lock()
	h.closed = true
	h.cond.Broadcast()
	h.mu.Unlock()
}

// pipeEnd is one endpoint of the duplex pipe.
type pipeEnd struct {
	in  *pipeHalf
	out *pipeHalf
}

func (h *pipeHalf) writeBuffers(bufs [][]byte) (int64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0, errors.New("ssl: write on closed pipe")
	}
	var n int64
	for _, b := range bufs {
		h.buf = append(h.buf, b...)
		n += int64(len(b))
	}
	h.cond.Broadcast()
	return n, nil
}

func (e *pipeEnd) Read(p []byte) (int, error)  { return e.in.read(p) }
func (e *pipeEnd) Write(p []byte) (int, error) { return e.out.write(p) }

// WriteBuffers implements record.BuffersWriter: the whole flight
// lands in the peer's buffer under one lock acquisition — the
// in-memory analogue of a single writev.
func (e *pipeEnd) WriteBuffers(bufs [][]byte) (int64, error) {
	return e.out.writeBuffers(bufs)
}
func (e *pipeEnd) Close() error {
	e.out.close()
	e.in.close()
	return nil
}

// ReadWait reports how long reads on this end have blocked waiting
// for the peer — transport stall, not SSL work.
func (e *pipeEnd) ReadWait() time.Duration {
	e.in.mu.Lock()
	defer e.in.mu.Unlock()
	return e.in.waited
}

// ReadWaiter is implemented by Pipe ends; measurement code uses it to
// exclude transport stalls from SSL-processing time.
type ReadWaiter interface {
	ReadWait() time.Duration
}

// Pipe returns the two ends of an in-memory duplex transport with
// unbounded buffering: writes always succeed immediately, reads block
// until data or close. This is the paper's standalone-measurement
// transport — no sockets, no kernel, no network.
func Pipe() (io.ReadWriteCloser, io.ReadWriteCloser) {
	a2b := newPipeHalf()
	b2a := newPipeHalf()
	return &pipeEnd{in: b2a, out: a2b}, &pipeEnd{in: a2b, out: b2a}
}
