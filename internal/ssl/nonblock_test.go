package ssl

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"sslperf/internal/handshake"
	"sslperf/internal/lifecycle"
	"sslperf/internal/suite"
)

// fixedTestTime pins Config.Time so hello randoms (whose first four
// bytes are the wall clock) are identical across runs.
func fixedTestTime() time.Time { return time.Unix(1101081600, 0) }

// recordingRW wraps a transport and logs every byte written through
// it — the blocking side of the wire-equivalence comparison. Bytes
// are logged before the underlying write, so a best-effort
// close_notify into an already-closed pipe still lands in the
// transcript (the sans-IO side always captures its queued alerts).
type recordingRW struct {
	rw  io.ReadWriteCloser
	mu  sync.Mutex
	log bytes.Buffer
}

func (r *recordingRW) Read(p []byte) (int, error) { return r.rw.Read(p) }

func (r *recordingRW) Write(p []byte) (int, error) {
	r.mu.Lock()
	r.log.Write(p)
	r.mu.Unlock()
	return r.rw.Write(p)
}

func (r *recordingRW) Close() error { return r.rw.Close() }

func (r *recordingRW) bytes() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]byte(nil), r.log.Bytes()...)
}

// blockingTranscript runs one full blocking-Conn exchange — handshake,
// client request, server response, server close, client close — over
// an in-memory pipe with recording transports, returning each side's
// complete wire transcript, the client's session, and whether the
// handshake resumed.
func blockingTranscript(t *testing.T, id suite.ID, seedC, seedS uint64,
	cache *handshake.SessionCache, sess *handshake.Session,
	req, resp []byte) (cliWire, srvWire []byte, out *handshake.Session, resumed bool) {
	t.Helper()
	ct, st := Pipe()
	rc := &recordingRW{rw: ct}
	rs := &recordingRW{rw: st}
	client := ClientConn(rc, &Config{
		Rand: NewPRNG(seedC), Suites: []suite.ID{id}, Time: fixedTestTime,
		InsecureSkipVerify: true, Session: sess,
	})
	server := ServerConn(rs, &Config{
		Rand: NewPRNG(seedS), Key: identity(t).Key, CertDER: identity(t).CertDER,
		Time: fixedTestTime, SessionCache: cache,
	})
	errs := make(chan error, 1)
	go func() {
		errs <- func() error {
			if _, err := client.Write(req); err != nil {
				return fmt.Errorf("client write: %w", err)
			}
			buf := make([]byte, len(resp))
			if _, err := io.ReadFull(client, buf); err != nil {
				return fmt.Errorf("client read: %w", err)
			}
			var one [1]byte
			if _, err := client.Read(one[:]); err != io.EOF {
				return fmt.Errorf("after close_notify: want EOF, got %v", err)
			}
			out, _ = client.Session()
			st, err := client.ConnectionState()
			if err != nil {
				return err
			}
			resumed = st.Resumed
			return client.Close()
		}()
	}()
	rbuf := make([]byte, len(req))
	if _, err := io.ReadFull(server, rbuf); err != nil {
		t.Fatalf("server read: %v", err)
	}
	if _, err := server.Write(resp); err != nil {
		t.Fatalf("server write: %v", err)
	}
	server.Close()
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	return rc.bytes(), rs.bytes(), out, resumed
}

// nonBlockingTranscript runs the identical exchange through a
// NonBlockingConn pair shuttled entirely in memory, capturing every
// outgoing byte of each side.
func nonBlockingTranscript(t *testing.T, id suite.ID, seedC, seedS uint64,
	cache *handshake.SessionCache, sess *handshake.Session,
	req, resp []byte) (cliWire, srvWire []byte, out *handshake.Session, resumed bool) {
	t.Helper()
	cli := NonBlockingClient(&Config{
		Rand: NewPRNG(seedC), Suites: []suite.ID{id}, Time: fixedTestTime,
		InsecureSkipVerify: true, Session: sess,
	})
	srv := NonBlockingServer(&Config{
		Rand: NewPRNG(seedS), Key: identity(t).Key, CertDER: identity(t).CertDER,
		Time: fixedTestTime, SessionCache: cache,
	})
	var cliLog, srvLog bytes.Buffer
	move := func(from, to *NonBlockingConn, log *bytes.Buffer) bool {
		o := from.Outgoing()
		if len(o) == 0 {
			return false
		}
		log.Write(o)
		if to != nil {
			to.Feed(o)
		}
		from.ConsumeOutgoing(len(o))
		return true
	}
	for i := 0; ; i++ {
		if i > 10000 {
			t.Fatal("non-blocking handshake did not converge")
		}
		progress := false
		if !cli.HandshakeDone() {
			if err := cli.HandshakeStep(); err == nil {
				progress = true
			} else if err != ErrWouldBlock {
				t.Fatalf("client step: %v", err)
			}
		}
		if move(cli, srv, &cliLog) {
			progress = true
		}
		if !srv.HandshakeDone() {
			if err := srv.HandshakeStep(); err == nil {
				progress = true
			} else if err != ErrWouldBlock {
				t.Fatalf("server step: %v", err)
			}
		}
		if move(srv, cli, &srvLog) {
			progress = true
		}
		if cli.HandshakeDone() && srv.HandshakeDone() {
			break
		}
		if !progress {
			t.Fatal("non-blocking shuttle deadlocked")
		}
	}
	if _, err := cli.WriteData(req); err != nil {
		t.Fatalf("client write: %v", err)
	}
	move(cli, srv, &cliLog)
	buf := make([]byte, 4096)
	for got := 0; got < len(req); {
		n, err := srv.ReadData(buf)
		if err != nil {
			t.Fatalf("server read: %v", err)
		}
		got += n
	}
	if _, err := srv.WriteData(resp); err != nil {
		t.Fatalf("server write: %v", err)
	}
	srv.Close()
	move(srv, cli, &srvLog)
	for got := 0; got < len(resp); {
		n, err := cli.ReadData(buf)
		if err != nil {
			t.Fatalf("client read: %v", err)
		}
		got += n
	}
	if _, err := cli.ReadData(buf); err != io.EOF {
		t.Fatalf("after close_notify: want EOF, got %v", err)
	}
	out, _ = cli.Session()
	st, err := cli.ConnectionState()
	if err != nil {
		t.Fatal(err)
	}
	cli.Close()
	move(cli, nil, &cliLog) // capture the client's close_notify
	return cliLog.Bytes(), srvLog.Bytes(), out, st.Resumed
}

// The golden wire-equivalence gate: for every suite, full and resumed,
// the blocking Conn and the NonBlockingConn must emit byte-identical
// transcripts in both directions given the same seeds and clock. The
// response is larger than one record so the fragmenting (and the
// blocking side's flight path) is covered too.
func TestNonBlockingWireEquivalence(t *testing.T) {
	req := bytes.Repeat([]byte("q"), 512)
	resp := bytes.Repeat([]byte("r"), 20000)
	for _, s := range suite.All() {
		t.Run(s.Name, func(t *testing.T) {
			cacheB := handshake.NewSessionCache(16)
			cacheN := handshake.NewSessionCache(16)
			bc, bs, bsess, bres := blockingTranscript(t, s.ID, 31, 32, cacheB, nil, req, resp)
			nc, ns, nsess, nres := nonBlockingTranscript(t, s.ID, 31, 32, cacheN, nil, req, resp)
			if bres || nres {
				t.Fatal("full handshake reported resumed")
			}
			if !bytes.Equal(bc, nc) {
				t.Errorf("full: client transcripts differ (blocking %d bytes, non-blocking %d)", len(bc), len(nc))
			}
			if !bytes.Equal(bs, ns) {
				t.Errorf("full: server transcripts differ (blocking %d bytes, non-blocking %d)", len(bs), len(ns))
			}
			if bsess == nil || nsess == nil {
				t.Fatal("missing sessions")
			}

			bc2, bs2, _, bres2 := blockingTranscript(t, s.ID, 41, 42, cacheB, bsess, req, resp)
			nc2, ns2, _, nres2 := nonBlockingTranscript(t, s.ID, 41, 42, cacheN, nsess, req, resp)
			if !bres2 || !nres2 {
				t.Fatalf("resumed handshake did not resume (blocking=%v non-blocking=%v)", bres2, nres2)
			}
			if !bytes.Equal(bc2, nc2) {
				t.Errorf("resumed: client transcripts differ (blocking %d bytes, non-blocking %d)", len(bc2), len(nc2))
			}
			if !bytes.Equal(bs2, ns2) {
				t.Errorf("resumed: server transcripts differ (blocking %d bytes, non-blocking %d)", len(bs2), len(ns2))
			}
		})
	}
}

// nbEstablishedPair shuttles a NonBlockingConn pair to established.
func nbEstablishedPair(t testing.TB, ccfg, scfg *Config) (*NonBlockingConn, *NonBlockingConn) {
	t.Helper()
	cli := NonBlockingClient(ccfg)
	srv := NonBlockingServer(scfg)
	for i := 0; !cli.HandshakeDone() || !srv.HandshakeDone(); i++ {
		if i > 10000 {
			t.Fatal("handshake did not converge")
		}
		if err := cli.HandshakeStep(); err != nil && err != ErrWouldBlock {
			t.Fatalf("client: %v", err)
		}
		if o := cli.Outgoing(); len(o) > 0 {
			srv.Feed(o)
			cli.ConsumeOutgoing(len(o))
		}
		if err := srv.HandshakeStep(); err != nil && err != ErrWouldBlock {
			t.Fatalf("server: %v", err)
		}
		if o := srv.Outgoing(); len(o) > 0 {
			cli.Feed(o)
			srv.ConsumeOutgoing(len(o))
		}
	}
	return cli, srv
}

// The lifecycle table must see the event-loop states: suspended while
// the FSM waits for bytes (with the open Table-2 step preserved),
// established on completion, gone after close.
func TestNonBlockingLifecycleSuspended(t *testing.T) {
	table := lifecycle.NewTable(lifecycle.Options{})
	scfg := &Config{
		Rand: NewPRNG(5), Key: identity(t).Key, CertDER: identity(t).CertDER,
		Lifecycle: table,
	}
	srv := NonBlockingServer(scfg)
	srv.SetRemoteAddr("10.0.0.9:999")
	if err := srv.HandshakeStep(); err != ErrWouldBlock {
		t.Fatalf("first step with no bytes: want ErrWouldBlock, got %v", err)
	}
	if c := table.Counts(); c.Suspended != 1 || c.Handshaking != 0 {
		t.Fatalf("after suspension: suspended=%d handshaking=%d, want 1/0", c.Suspended, c.Handshaking)
	}
	snap := table.Snapshot(lifecycle.SnapshotOptions{})
	if len(snap.Conns) != 1 || snap.Conns[0].State != "suspended" {
		t.Fatalf("snapshot state = %+v, want one suspended conn", snap.Conns)
	}
	if snap.Conns[0].Remote != "10.0.0.9:999" {
		t.Fatalf("remote = %q", snap.Conns[0].Remote)
	}
	if snap.Conns[0].Step == "" {
		t.Fatal("suspended conn lost its open step cursor")
	}

	// Drive it to completion with a client.
	cli := NonBlockingClient(&Config{Rand: NewPRNG(6), InsecureSkipVerify: true})
	for i := 0; !cli.HandshakeDone() || !srv.HandshakeDone(); i++ {
		if i > 10000 {
			t.Fatal("no convergence")
		}
		cli.HandshakeStep()
		if o := cli.Outgoing(); len(o) > 0 {
			srv.Feed(o)
			cli.ConsumeOutgoing(len(o))
		}
		srv.HandshakeStep()
		if o := srv.Outgoing(); len(o) > 0 {
			cli.Feed(o)
			srv.ConsumeOutgoing(len(o))
		}
	}
	if c := table.Counts(); c.Established != 1 || c.Suspended != 0 {
		t.Fatalf("after handshake: established=%d suspended=%d, want 1/0", c.Established, c.Suspended)
	}
	srv.Close()
	if c := table.Counts(); c.Live != 0 {
		t.Fatalf("after close: live=%d, want 0", c.Live)
	}
}

// The steady-state non-blocking data path must not allocate: write,
// feed, read round trips reuse the core's incoming/outgoing buffers
// and the conn's read stash.
func TestNonBlockSteadyStateZeroAlloc(t *testing.T) {
	cli, srv := nbEstablishedPair(t,
		&Config{Rand: NewPRNG(7), InsecureSkipVerify: true, Suites: []suite.ID{suite.RSAWithRC4128MD5}},
		&Config{Rand: NewPRNG(8), Key: identity(t).Key, CertDER: identity(t).CertDER},
	)
	payload := bytes.Repeat([]byte("z"), 1024)
	buf := make([]byte, 2048)
	roundTrip := func() {
		if _, err := srv.WriteData(payload); err != nil {
			t.Fatal(err)
		}
		o := srv.Outgoing()
		cli.Feed(o)
		srv.ConsumeOutgoing(len(o))
		for got := 0; got < len(payload); {
			n, err := cli.ReadData(buf)
			if err != nil {
				t.Fatal(err)
			}
			got += n
		}
	}
	for i := 0; i < 16; i++ {
		roundTrip() // warm the buffers
	}
	if a := testing.AllocsPerRun(200, roundTrip); a > 0 {
		t.Fatalf("steady-state round trip allocates %.1f/op, want 0", a)
	}
}
