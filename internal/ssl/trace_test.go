package ssl

import (
	"sync"
	"testing"
	"time"

	"sslperf/internal/rsabatch"
	"sslperf/internal/trace"
)

var traceSteps = []string{
	"init", "get_client_hello", "send_server_hello", "send_server_cert",
	"send_server_done", "get_client_kx", "get_cipher_spec/get_finished",
	"send_cipher_spec", "send_finished", "server_flush",
}

func TestTracedServerHandshake(t *testing.T) {
	tracer := trace.NewTracer(trace.Config{SampleEvery: 1})
	id := identity(t)
	sCfg := &Config{Rand: NewPRNG(3), Key: id.Key, CertDER: id.CertDER, Tracer: tracer}
	client, server := connect(t, clientCfg(nil), sCfg)

	// The handshake folds into the profiler immediately...
	snap := tracer.Profiler().Snapshot()
	if snap.Handshakes != 1 {
		t.Fatalf("profiler saw %d handshakes before close, want 1", snap.Handshakes)
	}
	if len(snap.Steps) != len(traceSteps) {
		t.Fatalf("profiler folded %d steps, want %d: %+v", len(snap.Steps), len(traceSteps), snap.Steps)
	}
	for i, want := range traceSteps {
		if snap.Steps[i].Name != want {
			t.Errorf("profiler step %d = %q, want %q", i, snap.Steps[i].Name, want)
		}
	}
	if snap.CryptoSharePct <= 0 {
		t.Error("no crypto attribution folded")
	}

	// ...but the trace publishes at Close, so bulk I/O is on it.
	if _, err := client.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := readFull(server, buf); err != nil {
		t.Fatal(err)
	}
	if got := len(tracer.Traces()); got != 0 {
		t.Fatalf("%d traces published before close", got)
	}
	client.Close()
	server.Close()

	traces := tracer.Traces()
	if len(traces) != 1 {
		t.Fatalf("published %d traces, want 1 (the sampled server)", len(traces))
	}
	td := traces[0]
	if td.Role != "server" || td.Outcome != "ok" {
		t.Fatalf("trace role/outcome = %s/%s", td.Role, td.Outcome)
	}
	var steps []string
	var hsDetail string
	sawCrypto, sawIO := false, false
	for _, sp := range td.Spans {
		switch sp.Category {
		case trace.CatStep:
			steps = append(steps, sp.Name)
		case trace.CatCrypto:
			sawCrypto = true
		case trace.CatIO:
			sawIO = true
		case trace.CatConn:
			if sp.Name == "handshake" {
				hsDetail = sp.Detail
			}
		}
	}
	if len(steps) != len(traceSteps) {
		t.Fatalf("trace carries %d step spans, want %d: %v", len(steps), len(traceSteps), steps)
	}
	for i, want := range traceSteps {
		if steps[i] != want {
			t.Errorf("step span %d = %q, want %q", i, steps[i], want)
		}
	}
	if !sawCrypto {
		t.Error("no crypto spans recorded")
	}
	if !sawIO {
		t.Error("no application I/O spans recorded")
	}
	if hsDetail == "" {
		t.Error("handshake span has no suite detail")
	}
}

func TestUnsampledConnectionHasNoTrace(t *testing.T) {
	tracer := trace.NewTracer(trace.Config{SampleEvery: 1 << 20})
	id := identity(t)
	sCfg := &Config{Rand: NewPRNG(3), Key: id.Key, CertDER: id.CertDER, Tracer: tracer}
	client, server := connect(t, clientCfg(nil), sCfg)
	defer client.Close()
	defer server.Close()
	if server.Trace() != nil {
		t.Fatal("unsampled connection carries a trace")
	}
	if st := tracer.Stats(); st.Sampled != 0 || st.Seen != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTracedClientHandshake(t *testing.T) {
	tracer := trace.NewTracer(trace.Config{SampleEvery: 1})
	id := identity(t)
	sCfg := &Config{Rand: NewPRNG(3), Key: id.Key, CertDER: id.CertDER}
	cCfg := clientCfg(func(c *Config) { c.Tracer = tracer })
	client, server := connect(t, cCfg, sCfg)
	client.Close()
	server.Close()
	traces := tracer.Traces()
	if len(traces) != 1 || traces[0].Role != "client" {
		t.Fatalf("traces = %+v", traces)
	}
	// Clients have no step observer: the trace is the handshake span
	// plus record-layer work, and it must not pollute the profiler's
	// handshake count.
	if got := tracer.Profiler().Snapshot().Handshakes; got != 0 {
		t.Fatalf("client trace counted as %d step-bearing handshakes", got)
	}
}

// TestTraceBatchLinks is the acceptance-shaped cross-trace run:
// concurrent handshakes against the batch RSA engine, every connection
// sampled, checking that batch spans carry links that resolve to
// distinct handshake traces.
func TestTraceBatchLinks(t *testing.T) {
	tracer := trace.NewTracer(trace.Config{SampleEvery: 1})
	setup := newBatchSetup(t, rsabatch.Config{
		BatchSize: 4,
		Linger:    2 * time.Millisecond,
		Rand:      NewPRNG(99),
		Tracer:    tracer,
	})
	defer setup.engine.Close()

	const conns = 16
	var wg sync.WaitGroup
	for g := 0; g < conns; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := g % len(setup.ks.Keys)
			ct := tracer.ConnBegin(uint64(g+1), "server")
			sCfg := setup.serverConfig(g, NewPRNG(uint64(1000+g)), nil)
			sCfg.Decrypter = setup.engine.DecrypterTraced(i, ct.Ref)
			cCfg := &Config{Rand: NewPRNG(uint64(2000 + g)), InsecureSkipVerify: true}
			tc, tsrv := Pipe()
			client := ClientConn(tc, cCfg)
			server := ServerConn(tsrv, sCfg)
			server.SetTrace(ct)
			errs := make(chan error, 1)
			go func() { errs <- client.Handshake() }()
			if err := server.Handshake(); err != nil {
				t.Errorf("conn %d: server handshake: %v", g, err)
				return
			}
			if err := <-errs; err != nil {
				t.Errorf("conn %d: client handshake: %v", g, err)
				return
			}
			client.Close()
			server.Close()
		}(g)
	}
	wg.Wait()

	if st := setup.engine.Stats(); st.Batched == 0 {
		t.Skipf("no decryption batched this run (stats: %+v)", st)
	}
	spans := tracer.EngineSpans()
	if len(spans) == 0 {
		t.Fatal("engine emitted batches but no engine spans")
	}
	linkedTraces := map[uint64]bool{}
	multi := false
	for _, sp := range spans {
		if sp.Name != "rsa_batch" || sp.Category != trace.CatEngine {
			t.Fatalf("unexpected engine span %+v", sp)
		}
		if sp.Duration <= 0 {
			t.Errorf("engine span has no duration: %+v", sp)
		}
		seen := map[uint64]bool{}
		for _, l := range sp.Links {
			if l.Trace == 0 {
				t.Errorf("zero link on %+v", sp)
			}
			seen[l.Trace] = true
			linkedTraces[l.Trace] = true
		}
		if len(seen) >= 2 {
			multi = true
		}
	}
	if !multi {
		t.Errorf("no batch span links two distinct handshake traces (spans: %d)", len(spans))
	}
	if len(linkedTraces) < 2 {
		t.Errorf("links cover %d traces, want >= 2", len(linkedTraces))
	}
}
