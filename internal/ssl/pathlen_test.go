package ssl

import (
	"io"
	"testing"

	"sslperf/internal/handshake"
	"sslperf/internal/pathlen"
	"sslperf/internal/probe"
	"sslperf/internal/suite"
)

// TestPathlenResumedHandshakeAttribution pins byte attribution on the
// resumed-session path: the encrypted finished exchange must charge
// its RecordCrypto bytes to the resumed-path steps (send_finished,
// get_cipher_spec/get_finished), the bulk transfer must land on the
// bulk row, and the collector's record totals must equal what the
// record layer itself counted.
func TestPathlenResumedHandshakeAttribution(t *testing.T) {
	id := identity(t)
	cache := handshake.NewSessionCache(16)

	// First connection: full handshake to seed the session cache.
	scfg := id.ServerConfig(NewPRNG(61))
	scfg.SessionCache = cache
	scfg.Suites = []suite.ID{suite.RSAWithRC4128MD5}
	ccfg := clientCfg(func(c *Config) { c.Suites = []suite.ID{suite.RSAWithRC4128MD5} })
	client, server := connect(t, ccfg, scfg)
	sess, err := client.Session()
	if err != nil {
		t.Fatal(err)
	}
	client.Close()
	server.Close()

	// Second connection resumes, with a pathlen collector on the
	// server's spine.
	col := pathlen.NewCollector()
	scfg2 := id.ServerConfig(NewPRNG(62))
	scfg2.SessionCache = cache
	scfg2.Suites = []suite.ID{suite.RSAWithRC4128MD5}
	scfg2.Probes = []probe.Sink{col}
	ccfg2 := clientCfg(func(c *Config) {
		c.Suites = []suite.ID{suite.RSAWithRC4128MD5}
		c.Session = sess
	})
	client2, server2 := connect(t, ccfg2, scfg2)
	if cs, _ := server2.ConnectionState(); !cs.Resumed {
		t.Fatal("second handshake did not resume")
	}

	snap := col.Snapshot()
	// The server's finished message is the first encrypted record it
	// writes: its MAC and cipher bytes belong to send_finished.
	sf, ok := snap.Step(probe.StepSendFinished.Name())
	if !ok || sf.CryptoBytes == 0 {
		t.Errorf("send_finished crypto bytes = %+v ok=%v, want > 0", sf, ok)
	}
	// The client's finished message is the first encrypted record the
	// server reads: decrypt + MAC-verify bytes belong to
	// get_cipher_spec/get_finished.
	gf, ok := snap.Step(probe.StepGetFinished.Name())
	if !ok || gf.CryptoBytes == 0 {
		t.Errorf("get_finished crypto bytes = %+v ok=%v, want > 0", gf, ok)
	}
	// A resumed handshake runs gen_key_block but never the RSA
	// decrypt step; no bulk row exists yet.
	if row, ok := snap.Step(probe.StepGetClientKX.Name()); ok && row.CryptoBytes > 0 {
		t.Errorf("resumed path charged bytes to get_client_kx: %+v", row)
	}
	if _, ok := snap.Step(probe.LabelBulk); ok {
		t.Errorf("bulk row present before any application data")
	}
	// The primitives are the suite's: RC4 cipher bytes and MD5 MAC
	// bytes, nothing on the other rows.
	rc4Row, ok := snap.Prim("RC4")
	if !ok || rc4Row.Bytes == 0 {
		t.Errorf("RC4 row = %+v ok=%v, want bytes > 0", rc4Row, ok)
	}
	md5Row, ok := snap.Prim("MD5")
	if !ok || md5Row.Bytes == 0 {
		t.Errorf("MD5 row = %+v ok=%v, want bytes > 0", md5Row, ok)
	}
	if row, ok := snap.Prim("other"); ok {
		t.Errorf("unattributed primitive row after resumed handshake: %+v", row)
	}

	// Bulk transfer: bytes flow both ways, land on the bulk row, and
	// the collector's totals reconcile with the record layer's own
	// stats — the fold drops nothing.
	msg := make([]byte, 3000)
	done := make(chan error, 1)
	go func() {
		_, err := client2.Write(msg)
		done <- err
	}()
	if _, err := io.ReadFull(server2, make([]byte, len(msg))); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if _, err := server2.Write(msg[:1234]); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(client2, make([]byte, 1234)); err != nil {
		t.Fatal(err)
	}

	snap = col.Snapshot()
	bulk, ok := snap.Step(probe.LabelBulk)
	if !ok || bulk.CryptoBytes == 0 {
		t.Fatalf("bulk row = %+v ok=%v, want crypto bytes > 0", bulk, ok)
	}
	stats := server2.Stats()
	if snap.BytesOut != uint64(stats.BytesWritten) {
		t.Errorf("pathlen bytes_out = %d, record layer wrote %d", snap.BytesOut, stats.BytesWritten)
	}
	if snap.BytesIn != uint64(stats.BytesRead) {
		t.Errorf("pathlen bytes_in = %d, record layer read %d", snap.BytesIn, stats.BytesRead)
	}
	if snap.RecordsOut != uint64(stats.RecordsWritten) || snap.RecordsIn != uint64(stats.RecordsRead) {
		t.Errorf("pathlen records = %d/%d, record layer = %d/%d",
			snap.RecordsIn, snap.RecordsOut, stats.RecordsRead, stats.RecordsWritten)
	}
	// MAC bytes cover every plaintext payload byte the armed layer
	// pushed: MD5 mac_compute bytes == plaintext written since the
	// write side armed (everything after the CCS, i.e. the finished
	// message plus the bulk records).
	client2.Close()
	server2.Close()
}
