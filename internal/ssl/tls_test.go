package ssl

import (
	"bytes"
	"io"
	"testing"

	"sslperf/internal/handshake"
	"sslperf/internal/record"
	"sslperf/internal/suite"
)

func TestTLS10HandshakeAllSuites(t *testing.T) {
	id := identity(t)
	for _, s := range suite.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			ccfg := clientCfg(func(c *Config) {
				c.Suites = []suite.ID{s.ID}
				c.Version = record.VersionTLS10
			})
			client, server := connect(t, ccfg, id.ServerConfig(NewPRNG(60)))
			cs, err := client.ConnectionState()
			if err != nil {
				t.Fatal(err)
			}
			if cs.Version != record.VersionTLS10 {
				t.Fatalf("negotiated %#04x, want TLS 1.0", cs.Version)
			}
			msg := []byte("tls1.0 over " + s.Name)
			go client.Write(msg)
			buf := make([]byte, len(msg))
			if _, err := io.ReadFull(server, buf); err != nil || !bytes.Equal(buf, msg) {
				t.Fatalf("transfer: %q %v", buf, err)
			}
		})
	}
}

func TestVersionNegotiationDowngrade(t *testing.T) {
	id := identity(t)
	// TLS client, SSL3-max server: must settle on SSL 3.0.
	ccfg := clientCfg(func(c *Config) { c.Version = record.VersionTLS10 })
	scfg := id.ServerConfig(NewPRNG(61))
	scfg.Version = record.VersionSSL30
	client, server := connect(t, ccfg, scfg)
	cs, _ := client.ConnectionState()
	if cs.Version != record.VersionSSL30 {
		t.Fatalf("negotiated %#04x, want SSL 3.0", cs.Version)
	}
	ss, _ := server.ConnectionState()
	if ss.Version != record.VersionSSL30 {
		t.Fatal("server disagrees on version")
	}
	go client.Write([]byte("ok"))
	buf := make([]byte, 2)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
}

func TestSSL3ClientAgainstDefaultServer(t *testing.T) {
	id := identity(t)
	// The default client (SSLv3, the paper's protocol) still works
	// against the default server (max TLS 1.0).
	client, _ := connect(t, clientCfg(nil), id.ServerConfig(NewPRNG(62)))
	cs, _ := client.ConnectionState()
	if cs.Version != record.VersionSSL30 {
		t.Fatalf("negotiated %#04x", cs.Version)
	}
}

func TestTLSResumption(t *testing.T) {
	id := identity(t)
	cache := handshake.NewSessionCache(8)
	scfg := id.ServerConfig(NewPRNG(63))
	scfg.SessionCache = cache
	ccfg := clientCfg(func(c *Config) { c.Version = record.VersionTLS10 })
	client, _ := connect(t, ccfg, scfg)
	sess, _ := client.Session()
	if sess.Version != record.VersionTLS10 {
		t.Fatalf("session version %#04x", sess.Version)
	}

	scfg2 := id.ServerConfig(NewPRNG(64))
	scfg2.SessionCache = cache
	ccfg2 := clientCfg(func(c *Config) {
		c.Version = record.VersionTLS10
		c.Session = sess
	})
	client2, _ := connect(t, ccfg2, scfg2)
	cs, _ := client2.ConnectionState()
	if !cs.Resumed || cs.Version != record.VersionTLS10 {
		t.Fatalf("resumed=%v version=%#04x", cs.Resumed, cs.Version)
	}
}

func TestSSL3SessionNotResumedUnderTLS(t *testing.T) {
	id := identity(t)
	cache := handshake.NewSessionCache(8)
	// Establish under SSL 3.0.
	scfg := id.ServerConfig(NewPRNG(65))
	scfg.SessionCache = cache
	client, _ := connect(t, clientCfg(nil), scfg)
	sess, _ := client.Session()

	// Offer it from a TLS 1.0 client: versions differ, so the server
	// must do a full handshake rather than resume across versions.
	scfg2 := id.ServerConfig(NewPRNG(66))
	scfg2.SessionCache = cache
	ccfg2 := clientCfg(func(c *Config) {
		c.Version = record.VersionTLS10
		c.Session = sess
	})
	client2, _ := connect(t, ccfg2, scfg2)
	cs, _ := client2.ConnectionState()
	if cs.Resumed {
		t.Fatal("session resumed across protocol versions")
	}
}

func TestTLSDHEHandshake(t *testing.T) {
	id := identity(t)
	ccfg := clientCfg(func(c *Config) {
		c.Version = record.VersionTLS10
		c.Suites = []suite.ID{suite.DHERSAWithAES128CBCSHA}
	})
	client, server := connect(t, ccfg, id.ServerConfig(NewPRNG(67)))
	cs, _ := client.ConnectionState()
	if cs.Version != record.VersionTLS10 || cs.Suite.Kx != suite.KxDHERSA {
		t.Fatalf("state: %+v", cs)
	}
	go client.Write([]byte("fs"))
	buf := make([]byte, 2)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
}

func TestTLSLargeTransfer(t *testing.T) {
	id := identity(t)
	ccfg := clientCfg(func(c *Config) { c.Version = record.VersionTLS10 })
	client, server := connect(t, ccfg, id.ServerConfig(NewPRNG(68)))
	data := make([]byte, 100_000)
	NewPRNG(69).Read(data)
	go func() {
		client.Write(data)
		client.Close()
	}()
	got, err := io.ReadAll(server)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("transfer: %d bytes, err %v", len(got), err)
	}
}
