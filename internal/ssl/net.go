package ssl

import (
	"io"
	"net"
	"time"

	"sslperf/internal/record"
)

// vectored adapts a transport for the record layer's flight flush:
// transports that already implement record.BuffersWriter (the
// in-memory pipe) pass through, net.Conns gain a WriteBuffers backed
// by net.Buffers (one writev syscall on TCP), and anything else falls
// back to per-record writes inside the record layer.
func vectored(t io.ReadWriteCloser) io.ReadWriter {
	if _, ok := t.(record.BuffersWriter); ok {
		return t
	}
	if nc, ok := t.(net.Conn); ok {
		return &netVectored{nc}
	}
	return t
}

// netVectored wraps a net.Conn with a vectored write entry point.
type netVectored struct{ net.Conn }

// WriteBuffers flushes bufs with one writev on OS-backed connections
// (net.Buffers consumes the slice, which the record layer permits).
func (v *netVectored) WriteBuffers(bufs [][]byte) (int64, error) {
	b := net.Buffers(bufs)
	return b.WriteTo(v.Conn)
}

// Listener wraps a net.Listener, returning SSL server connections —
// the tls.Listen analogue.
type Listener struct {
	inner net.Listener
	cfg   *Config
}

// Listen announces on the network address and wraps accepted
// connections as SSL servers with cfg.
func Listen(network, addr string, cfg *Config) (*Listener, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return &Listener{inner: ln, cfg: cfg}, nil
}

// NewListener wraps an existing net.Listener.
func NewListener(inner net.Listener, cfg *Config) *Listener {
	return &Listener{inner: inner, cfg: cfg}
}

// Accept waits for a connection and returns it wrapped as an SSL
// server Conn. The handshake is deferred to the first Read/Write (or
// an explicit Handshake call), as crypto/tls does.
func (l *Listener) Accept() (*Conn, error) {
	tc, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	return ServerConn(tc, l.cfg), nil
}

// Addr reports the listener's address.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }

// Close stops the listener.
func (l *Listener) Close() error { return l.inner.Close() }

// Dial connects to addr, runs the SSL handshake as a client with cfg,
// and returns the connection — the tls.Dial analogue. On handshake
// failure the TCP connection is closed.
func Dial(network, addr string, cfg *Config) (*Conn, error) {
	return DialTimeout(network, addr, cfg, 0)
}

// DialTimeout is Dial with a connect timeout (0 = none; the timeout
// covers TCP establishment, not the handshake).
func DialTimeout(network, addr string, cfg *Config, timeout time.Duration) (*Conn, error) {
	d := net.Dialer{Timeout: timeout}
	tc, err := d.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	conn := ClientConn(tc, cfg)
	if err := conn.Handshake(); err != nil {
		tc.Close()
		return nil, err
	}
	return conn, nil
}
