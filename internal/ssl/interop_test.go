package ssl

import (
	"bytes"
	stdrsa "crypto/rsa"
	stdtls "crypto/tls"
	stdx509 "crypto/x509"
	"crypto/x509/pkix"
	"io"
	"math/big"
	"net"
	"sync"
	"testing"
	"time"

	"sslperf/internal/record"
	"sslperf/internal/suite"
)

// Interoperability against Go's crypto/tls over TLS 1.0: the
// strongest possible cross-check of the record layer, handshake,
// HMAC, and PRF — every byte must satisfy an independent peer.

var (
	stdOnce sync.Once
	stdCert stdtls.Certificate
	stdErr  error
)

// stdIdentity builds a crypto/tls certificate for the stdlib peer.
func stdIdentity(t *testing.T) stdtls.Certificate {
	t.Helper()
	stdOnce.Do(func() {
		key, err := stdrsa.GenerateKey(stdRand{}, 1024)
		if err != nil {
			stdErr = err
			return
		}
		tmpl := &stdx509.Certificate{
			SerialNumber: big.NewInt(42),
			Subject:      pkix.Name{CommonName: "stdlib-peer"},
			NotBefore:    time.Now().Add(-time.Hour),
			NotAfter:     time.Now().Add(24 * time.Hour),
		}
		der, err := stdx509.CreateCertificate(stdRand{}, tmpl, tmpl, &key.PublicKey, key)
		if err != nil {
			stdErr = err
			return
		}
		stdCert = stdtls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}
	})
	if stdErr != nil {
		t.Fatal(stdErr)
	}
	return stdCert
}

// stdRand adapts our PRNG to the entropy interface stdlib wants in
// tests (deterministic keygen keeps the suite reproducible).
type stdRand struct{}

var stdRandSrc = NewPRNG(0xdead)

func (stdRand) Read(p []byte) (int, error) { return stdRandSrc.Read(p) }

// interopSuites maps our suite IDs to crypto/tls cipher suite IDs
// (they share the wire values).
var interopSuites = []struct {
	ours suite.ID
	std  uint16
	name string
}{
	{suite.RSAWithAES128CBCSHA, stdtls.TLS_RSA_WITH_AES_128_CBC_SHA, "AES128-SHA"},
	{suite.RSAWithAES256CBCSHA, stdtls.TLS_RSA_WITH_AES_256_CBC_SHA, "AES256-SHA"},
	{suite.RSAWith3DESEDECBCSHA, stdtls.TLS_RSA_WITH_3DES_EDE_CBC_SHA, "DES-CBC3-SHA"},
}

// TestInteropStdlibClientToOurServer drives Go's TLS client against
// this library's server.
func TestInteropStdlibClientToOurServer(t *testing.T) {
	id := identity(t) // our 512-bit test identity is too small for stdlib; use 1024
	_ = id
	bigID, err := NewIdentity(NewPRNG(0xbeef), 1024, "interop-server", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range interopSuites {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Skip("no loopback:", err)
			}
			defer ln.Close()

			srvErr := make(chan error, 1)
			go func() {
				conn, err := ln.Accept()
				if err != nil {
					srvErr <- err
					return
				}
				scfg := bigID.ServerConfig(NewPRNG(71))
				scfg.Suites = []suite.ID{tc.ours}
				s := ServerConn(conn, scfg)
				defer s.Close()
				buf := make([]byte, 5)
				if _, err := io.ReadFull(s, buf); err != nil {
					srvErr <- err
					return
				}
				_, err = s.Write(bytes.ToUpper(buf))
				srvErr <- err
			}()

			client, err := stdtls.Dial("tcp", ln.Addr().String(), &stdtls.Config{
				InsecureSkipVerify: true,
				MinVersion:         stdtls.VersionTLS10,
				MaxVersion:         stdtls.VersionTLS10,
				CipherSuites:       []uint16{tc.std},
			})
			if err != nil {
				t.Fatalf("stdlib client rejected our server: %v", err)
			}
			defer client.Close()
			if _, err := client.Write([]byte("hello")); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 5)
			if _, err := io.ReadFull(client, buf); err != nil {
				t.Fatal(err)
			}
			if string(buf) != "HELLO" {
				t.Fatalf("echo = %q", buf)
			}
			if err := <-srvErr; err != nil {
				t.Fatal(err)
			}
			if cs := client.ConnectionState(); cs.CipherSuite != tc.std {
				t.Fatalf("negotiated %#04x", cs.CipherSuite)
			}
		})
	}
}

// TestInteropOurClientToStdlibServer drives this library's client
// against Go's TLS server.
func TestInteropOurClientToStdlibServer(t *testing.T) {
	cert := stdIdentity(t)
	for _, tc := range interopSuites {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ln, err := stdtls.Listen("tcp", "127.0.0.1:0", &stdtls.Config{
				Certificates: []stdtls.Certificate{cert},
				MinVersion:   stdtls.VersionTLS10,
				MaxVersion:   stdtls.VersionTLS10,
				CipherSuites: []uint16{tc.std},
			})
			if err != nil {
				t.Skip("no loopback:", err)
			}
			defer ln.Close()

			srvErr := make(chan error, 1)
			go func() {
				conn, err := ln.Accept()
				if err != nil {
					srvErr <- err
					return
				}
				defer conn.Close()
				buf := make([]byte, 4)
				if _, err := io.ReadFull(conn, buf); err != nil {
					srvErr <- err
					return
				}
				_, err = conn.Write(append(buf, buf...))
				srvErr <- err
			}()

			tcpConn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			client := ClientConn(tcpConn, &Config{
				Rand:               NewPRNG(72),
				Version:            record.VersionTLS10,
				Suites:             []suite.ID{tc.ours},
				InsecureSkipVerify: true,
			})
			defer client.Close()
			if err := client.Handshake(); err != nil {
				t.Fatalf("our client rejected stdlib server: %v", err)
			}
			cs, _ := client.ConnectionState()
			if cs.Version != record.VersionTLS10 || cs.Suite.ID != tc.ours {
				t.Fatalf("state: %+v", cs)
			}
			if _, err := client.Write([]byte("ping")); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 8)
			if _, err := io.ReadFull(client, buf); err != nil {
				t.Fatal(err)
			}
			if string(buf) != "pingping" {
				t.Fatalf("reply = %q", buf)
			}
			if err := <-srvErr; err != nil {
				t.Fatal(err)
			}
		})
	}
}
