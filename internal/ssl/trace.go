package ssl

import (
	"sslperf/internal/handshake"
	"sslperf/internal/trace"
)

// traceStartFn arms a sampled connection: starts (or adopts) its
// ConnTrace and opens the top-level handshake span. Shared by the
// blocking and non-blocking connection types; returns (nil, 0) when
// the tracer declines to sample. The step, crypto, and record-layer
// span flow arrives through the trace probe sink on the bus.
func traceStartFn(tracer *trace.Tracer, ct *trace.ConnTrace, telemetryID uint64, isClient bool) (*trace.ConnTrace, uint64) {
	role := "client"
	if !isClient {
		role = "server"
	}
	if ct == nil {
		ct = tracer.ConnBegin(telemetryID, role)
		if ct == nil {
			return nil, 0 // not sampled
		}
	} else if telemetryID != 0 {
		ct.SetConn(telemetryID)
	}
	return ct, ct.Begin("handshake", trace.CatConn, 0)
}

// traceStart arms a sampled blocking connection. Called with c.mu
// held, only when a tracer or a pre-started trace is present.
func (c *Conn) traceStart() {
	c.ct, c.traceHS = traceStartFn(c.cfg.Tracer, c.ct, c.telemetryID, c.isClient)
}

// traceFinishFn closes the handshake span and folds the trace into the
// live anatomy profiler, returning the outcome Close will report.
// Failed handshakes finish the whole trace immediately; successful
// ones stay open for application I/O spans until Close. result is
// only read when err is nil.
func traceFinishFn(ct *trace.ConnTrace, hsSpan uint64, result *handshake.Result, err error) string {
	ct.End(hsSpan, -1)
	if err != nil {
		outcome := FailureReason(err)
		ct.Finish(outcome)
		return outcome
	}
	outcome := "ok"
	detail := result.Suite.Name
	if result.Resumed {
		outcome = "resumed"
		detail += " resumed"
	}
	ct.SetDetail(hsSpan, detail)
	ct.Fold()
	return outcome
}

func (c *Conn) traceFinish(err error) {
	c.traceOutcome = traceFinishFn(c.ct, c.traceHS, c.result, err)
}
