package ssl

import (
	"sslperf/internal/trace"
)

// traceStart arms a sampled connection: starts (or adopts) its
// ConnTrace and opens the top-level handshake span. The step, crypto,
// and record-layer span flow arrives through the trace probe sink
// armProbes attaches. Called with c.mu held, only when a tracer or a
// pre-started trace is present.
func (c *Conn) traceStart() {
	role := "client"
	if !c.isClient {
		role = "server"
	}
	if c.ct == nil {
		c.ct = c.cfg.Tracer.ConnBegin(c.telemetryID, role)
		if c.ct == nil {
			return // not sampled
		}
	} else if c.telemetryID != 0 {
		c.ct.SetConn(c.telemetryID)
	}
	c.traceHS = c.ct.Begin("handshake", trace.CatConn, 0)
}

// traceFinish closes the handshake span and folds the trace into the
// live anatomy profiler. Failed handshakes finish the whole trace
// immediately; successful ones stay open for application I/O spans
// until Close.
func (c *Conn) traceFinish(err error) {
	c.ct.End(c.traceHS, -1)
	if err != nil {
		c.traceOutcome = FailureReason(err)
		c.ct.Finish(c.traceOutcome)
		return
	}
	c.traceOutcome = "ok"
	detail := c.result.Suite.Name
	if c.result.Resumed {
		c.traceOutcome = "resumed"
		detail += " resumed"
	}
	c.ct.SetDetail(c.traceHS, detail)
	c.ct.Fold()
}
