package ssl

import (
	"time"

	"sslperf/internal/handshake"
	"sslperf/internal/record"
	"sslperf/internal/trace"
)

// multiStepObserver fans step-boundary callbacks out to several
// observers — telemetry's flight recorder and the span tracer both
// listen to the same handshake FSM.
type multiStepObserver []handshake.StepObserver

func (m multiStepObserver) StepStart(index int, name, desc string) {
	for _, o := range m {
		o.StepStart(index, name, desc)
	}
}

func (m multiStepObserver) StepEnd(index int, name string, elapsed time.Duration) {
	for _, o := range m {
		o.StepEnd(index, name, elapsed)
	}
}

func (m multiStepObserver) CryptoCall(step, fn string, elapsed time.Duration) {
	for _, o := range m {
		o.CryptoCall(step, fn, elapsed)
	}
}

// addStepObserver chains obs onto the anatomy's existing observer.
func addStepObserver(a *handshake.Anatomy, obs handshake.StepObserver) {
	switch prev := a.Observer.(type) {
	case nil:
		a.Observer = obs
	case multiStepObserver:
		a.Observer = append(prev, obs)
	default:
		a.Observer = multiStepObserver{prev, obs}
	}
}

// traceStepObserver turns step boundaries and crypto calls into spans
// on the connection's trace. It runs on the handshake goroutine only.
type traceStepObserver struct {
	ct     *trace.ConnTrace
	parent uint64 // the top-level handshake span
	cur    uint64 // the open step span
}

func (o *traceStepObserver) StepStart(index int, name, desc string) {
	o.cur = o.ct.Begin(name, trace.CatStep, o.parent)
}

func (o *traceStepObserver) StepEnd(index int, name string, elapsed time.Duration) {
	// The observer reports cumulative in-step time, which excludes
	// I/O waits the wall clock would charge; pass it through.
	o.ct.End(o.cur, elapsed)
	o.cur = 0
}

func (o *traceStepObserver) CryptoCall(step, fn string, elapsed time.Duration) {
	// Crypto calls report after the fact: synthesize the start time.
	o.ct.Event(fn, trace.CatCrypto, o.cur, time.Now().Add(-elapsed), elapsed)
}

// traceStart arms a sampled connection: starts (or adopts) its
// ConnTrace, opens the top-level handshake span, installs the step
// observer next to any telemetry observer, and chains a record-layer
// hook so cipher/MAC work becomes record spans. Called with c.mu
// held, only when a tracer or a pre-started trace is present.
func (c *Conn) traceStart() {
	role := "client"
	if !c.isClient {
		role = "server"
	}
	if c.ct == nil {
		c.ct = c.cfg.Tracer.ConnBegin(c.telemetryID, role)
		if c.ct == nil {
			return // not sampled
		}
	} else if c.telemetryID != 0 {
		c.ct.SetConn(c.telemetryID)
	}
	c.traceHS = c.ct.Begin("handshake", trace.CatConn, 0)

	if !c.isClient {
		if c.anatomy == nil {
			c.anatomy = handshake.NewAnatomy()
		}
		addStepObserver(c.anatomy, &traceStepObserver{ct: c.ct, parent: c.traceHS})
	}

	// Record-layer cipher/MAC work becomes record spans. During the
	// handshake's finished messages the server FSM temporarily swaps
	// this hook for its own (attributing the same work to Table 2's
	// pri_decryption/mac rows) and restores it after, so bulk-phase
	// work lands here without double counting.
	ct, prev := c.ct, c.layer.OnCrypto
	c.layer.OnCrypto = func(op record.CryptoOp, n int, d time.Duration) {
		if prev != nil {
			prev(op, n, d)
		}
		ct.Event(op.String(), trace.CatRecord, 0, time.Now().Add(-d), d)
	}
}

// traceFinish closes the handshake span and folds the trace into the
// live anatomy profiler. Failed handshakes finish the whole trace
// immediately; successful ones stay open for application I/O spans
// until Close.
func (c *Conn) traceFinish(err error) {
	c.ct.End(c.traceHS, -1)
	if err != nil {
		c.traceOutcome = FailureReason(err)
		c.ct.Finish(c.traceOutcome)
		return
	}
	c.traceOutcome = "ok"
	detail := c.result.Suite.Name
	if c.result.Resumed {
		c.traceOutcome = "resumed"
		detail += " resumed"
	}
	c.ct.SetDetail(c.traceHS, detail)
	c.ct.Fold()
}
