package ssl

import (
	"errors"
	"io"
	"strings"
	"time"

	"sslperf/internal/record"
	"sslperf/internal/telemetry"
)

// telemetryStart prepares a connection for emission: assigns its ID
// and records the handshake_start event. The step/crypto/record flow
// itself arrives through the telemetry probe sink armProbes attaches.
// Called with c.mu held, only when a registry is configured.
func (c *Conn) telemetryStart(reg *telemetry.Registry) {
	c.telemetryID = reg.ConnOpen()
	role := "client"
	if !c.isClient {
		role = "server"
	}
	reg.Event(c.telemetryID, telemetry.EventHandshakeStart, "", role, 0)
}

// telemetryFinish records the outcome of a handshake attempt: the
// outcome counters, the latency histograms, the per-step histograms
// (server side, from the anatomy the FSM just filled), and the
// terminal flight-recorder event.
func (c *Conn) telemetryFinish(reg *telemetry.Registry, d time.Duration, err error) {
	if err != nil {
		reason := FailureReason(err)
		reg.HandshakeFailed(reason)
		reg.Event(c.telemetryID, telemetry.EventHandshakeFail, reason, err.Error(), d)
		return
	}
	reg.HandshakeDone(c.result.Suite.Name, c.result.Session.Version, c.result.Resumed, d)
	if c.anatomy != nil {
		for _, step := range c.anatomy.Steps {
			reg.ObserveStep(step.Name, step.Elapsed)
		}
	}
	detail := c.result.Suite.Name
	if c.result.Resumed {
		detail += " resumed"
	}
	reg.Event(c.telemetryID, telemetry.EventHandshakeDone, "", detail, d)
}

// FailureReason maps a handshake error onto a stable, low-cardinality
// tag for the failure counter: the alert name when the peer said why,
// a coarse category otherwise. The telemetry layer and cmd/sslserver
// both use it so logs and counters agree.
func FailureReason(err error) string {
	var ae *record.AlertError
	if errors.As(err, &ae) {
		return record.AlertName(ae.Description)
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return "eof"
	}
	msg := err.Error()
	switch {
	case strings.Contains(msg, "certificate"):
		return "bad_certificate"
	case strings.Contains(msg, "version"):
		return "version_mismatch"
	case strings.Contains(msg, "finished"):
		return "finished_verify_failed"
	case strings.Contains(msg, "record:"):
		return "record_error"
	default:
		return "protocol_error"
	}
}
