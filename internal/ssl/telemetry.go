package ssl

import (
	"time"

	"sslperf/internal/telemetry"
)

// telemetryStart prepares a connection for emission: assigns its ID
// and records the handshake_start event. The step/crypto/record flow
// itself arrives through the telemetry probe sink armProbes attaches.
// Called with c.mu held, only when a registry is configured.
func (c *Conn) telemetryStart(reg *telemetry.Registry) {
	c.telemetryID = reg.ConnOpen()
	role := "client"
	if !c.isClient {
		role = "server"
	}
	reg.Event(c.telemetryID, telemetry.EventHandshakeStart, "", role, 0)
}

// telemetryFinish records the outcome of a handshake attempt: the
// outcome counters, the latency histograms, the per-step histograms
// (server side, from the anatomy the FSM just filled), and the
// terminal flight-recorder event.
func (c *Conn) telemetryFinish(reg *telemetry.Registry, d time.Duration, err error) {
	if err != nil {
		reason := FailureReason(err)
		reg.HandshakeFailed(reason)
		reg.Event(c.telemetryID, telemetry.EventHandshakeFail, reason, err.Error(), d)
		return
	}
	reg.HandshakeDone(c.result.Suite.Name, c.result.Session.Version, c.result.Resumed, d)
	if c.anatomy != nil {
		for _, step := range c.anatomy.Steps {
			reg.ObserveStep(step.Name, step.Elapsed)
		}
	}
	detail := c.result.Suite.Name
	if c.result.Resumed {
		detail += " resumed"
	}
	reg.Event(c.telemetryID, telemetry.EventHandshakeDone, "", detail, d)
}
