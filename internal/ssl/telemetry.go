package ssl

import (
	"time"

	"sslperf/internal/handshake"
	"sslperf/internal/telemetry"
)

// telemetryStartFn assigns a connection ID and records the
// handshake_start event; shared by the blocking and non-blocking
// connection types. The step/crypto/record flow itself arrives through
// the telemetry probe sink the bus assembly attaches.
func telemetryStartFn(reg *telemetry.Registry, isClient bool) uint64 {
	id := reg.ConnOpen()
	role := "client"
	if !isClient {
		role = "server"
	}
	reg.Event(id, telemetry.EventHandshakeStart, "", role, 0)
	return id
}

// telemetryStart prepares a connection for emission. Called with c.mu
// held, only when a registry is configured.
func (c *Conn) telemetryStart(reg *telemetry.Registry) {
	c.telemetryID = telemetryStartFn(reg, c.isClient)
}

// telemetryFinishFn records the outcome of a handshake attempt: the
// outcome counters, the latency histograms, the per-step histograms
// (server side, from the anatomy the FSM just filled), and the
// terminal flight-recorder event. result is only read when err is nil.
func telemetryFinishFn(reg *telemetry.Registry, id uint64, result *handshake.Result,
	anatomy *handshake.Anatomy, d time.Duration, err error) {
	if err != nil {
		reason := FailureReason(err)
		reg.HandshakeFailed(reason)
		reg.Event(id, telemetry.EventHandshakeFail, reason, err.Error(), d)
		return
	}
	reg.HandshakeDone(result.Suite.Name, result.Session.Version, result.Resumed, d)
	if anatomy != nil {
		for _, step := range anatomy.Steps {
			reg.ObserveStep(step.Name, step.Elapsed)
		}
	}
	detail := result.Suite.Name
	if result.Resumed {
		detail += " resumed"
	}
	reg.Event(id, telemetry.EventHandshakeDone, "", detail, d)
}

func (c *Conn) telemetryFinish(reg *telemetry.Registry, d time.Duration, err error) {
	telemetryFinishFn(reg, c.telemetryID, c.result, c.anatomy, d, err)
}
