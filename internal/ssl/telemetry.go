package ssl

import (
	"errors"
	"io"
	"strings"
	"time"

	"sslperf/internal/handshake"
	"sslperf/internal/record"
	"sslperf/internal/telemetry"
)

// stepTelemetry streams handshake-FSM step boundaries and crypto
// calls into the flight recorder as they happen.
type stepTelemetry struct {
	reg  *telemetry.Registry
	conn uint64
}

func (o stepTelemetry) StepStart(index int, name, desc string) {
	o.reg.Event(o.conn, telemetry.EventStepStart, name, desc, 0)
}

func (o stepTelemetry) StepEnd(index int, name string, elapsed time.Duration) {
	o.reg.Event(o.conn, telemetry.EventStepEnd, name, "", elapsed)
}

func (o stepTelemetry) CryptoCall(step, fn string, elapsed time.Duration) {
	o.reg.Event(o.conn, telemetry.EventCrypto, fn, step, elapsed)
}

// telemetryStart prepares a connection for emission: assigns its ID,
// records the handshake_start event, arms the record-layer observer,
// and (server side) installs a step observer. Called with c.mu held,
// only when a registry is configured.
func (c *Conn) telemetryStart(reg *telemetry.Registry) {
	c.telemetryID = reg.ConnOpen()
	role := "client"
	if !c.isClient {
		role = "server"
		if c.anatomy == nil {
			c.anatomy = handshake.NewAnatomy()
		}
	}
	if c.anatomy != nil && c.anatomy.Observer == nil {
		c.anatomy.Observer = stepTelemetry{reg: reg, conn: c.telemetryID}
	}
	id := c.telemetryID
	c.layer.OnRecord = func(written bool, typ record.ContentType, n int) {
		reg.RecordIO(written, typ == record.TypeAlert, n)
		if typ == record.TypeAlert {
			kind := telemetry.EventAlertReceived
			if written {
				kind = telemetry.EventAlertSent
			}
			reg.Event(id, kind, "", "", 0)
		}
	}
	reg.Event(id, telemetry.EventHandshakeStart, "", role, 0)
}

// telemetryFinish records the outcome of a handshake attempt: the
// outcome counters, the latency histograms, the per-step histograms
// (server side, from the anatomy the FSM just filled), and the
// terminal flight-recorder event.
func (c *Conn) telemetryFinish(reg *telemetry.Registry, d time.Duration, err error) {
	if err != nil {
		reason := FailureReason(err)
		reg.HandshakeFailed(reason)
		reg.Event(c.telemetryID, telemetry.EventHandshakeFail, reason, err.Error(), d)
		return
	}
	reg.HandshakeDone(c.result.Suite.Name, c.result.Session.Version, c.result.Resumed, d)
	if c.anatomy != nil {
		for _, step := range c.anatomy.Steps {
			reg.ObserveStep(step.Name, step.Elapsed)
		}
	}
	detail := c.result.Suite.Name
	if c.result.Resumed {
		detail += " resumed"
	}
	reg.Event(c.telemetryID, telemetry.EventHandshakeDone, "", detail, d)
}

// FailureReason maps a handshake error onto a stable, low-cardinality
// tag for the failure counter: the alert name when the peer said why,
// a coarse category otherwise. The telemetry layer and cmd/sslserver
// both use it so logs and counters agree.
func FailureReason(err error) string {
	var ae *record.AlertError
	if errors.As(err, &ae) {
		return record.AlertName(ae.Description)
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return "eof"
	}
	msg := err.Error()
	switch {
	case strings.Contains(msg, "certificate"):
		return "bad_certificate"
	case strings.Contains(msg, "version"):
		return "version_mismatch"
	case strings.Contains(msg, "finished"):
		return "finished_verify_failed"
	case strings.Contains(msg, "record:"):
		return "record_error"
	default:
		return "protocol_error"
	}
}
