package ssl

import (
	"testing"

	"sslperf/internal/telemetry"
)

// benchConfigs returns client/server configs, instrumented or not.
func benchConfigs(b *testing.B, reg *telemetry.Registry) (*Config, *Config) {
	b.Helper()
	id := identity(b)
	scfg := id.ServerConfig(NewPRNG(31))
	scfg.Telemetry = reg
	ccfg := &Config{Rand: NewPRNG(32), InsecureSkipVerify: true, Telemetry: reg}
	return ccfg, scfg
}

// benchHandshake measures full handshakes per op over the in-memory
// pipe — the disabled-path (reg == nil) run is the baseline the
// BENCH_telemetry.json overhead figures compare against.
func benchHandshake(b *testing.B, reg *telemetry.Registry) {
	ccfg, scfg := benchConfigs(b, reg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct, st := Pipe()
		client, server := ClientConn(ct, ccfg), ServerConn(st, scfg)
		errs := make(chan error, 1)
		go func() { errs <- client.Handshake() }()
		if err := server.Handshake(); err != nil {
			b.Fatal(err)
		}
		if err := <-errs; err != nil {
			b.Fatal(err)
		}
		ct.Close()
		st.Close()
	}
}

func BenchmarkHandshakeTelemetryOff(b *testing.B) { benchHandshake(b, nil) }
func BenchmarkHandshakeTelemetryOn(b *testing.B) {
	benchHandshake(b, telemetry.NewRegistry())
}

// benchRecordThroughput measures bulk record transfer through an
// established connection.
func benchRecordThroughput(b *testing.B, reg *telemetry.Registry) {
	ccfg, scfg := benchConfigs(b, reg)
	ct, st := Pipe()
	client, server := ClientConn(ct, ccfg), ServerConn(st, scfg)
	errs := make(chan error, 1)
	go func() { errs <- client.Handshake() }()
	if err := server.Handshake(); err != nil {
		b.Fatal(err)
	}
	if err := <-errs; err != nil {
		b.Fatal(err)
	}
	const chunk = 4096
	payload := make([]byte, chunk)
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, chunk)
		var got int
		for got < b.N*chunk {
			n, err := server.Read(buf)
			if err != nil {
				b.Error(err)
				return
			}
			got += n
		}
	}()
	b.SetBytes(chunk)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Write(payload); err != nil {
			b.Fatal(err)
		}
	}
	<-done
	b.StopTimer()
	client.Close()
	server.Close()
}

func BenchmarkRecordThroughputTelemetryOff(b *testing.B) { benchRecordThroughput(b, nil) }
func BenchmarkRecordThroughputTelemetryOn(b *testing.B) {
	benchRecordThroughput(b, telemetry.NewRegistry())
}
