// Package ssl ties the record layer and handshake protocol into a
// connection API modeled on crypto/tls: Conn wraps any
// io.ReadWriteCloser transport (TCP, or the in-memory pipe that
// replicates the paper's standalone ssltest setup) and exposes
// Read/Write over the negotiated SSLv3 channel.
//
// This package reproduces a 2005 performance study. SSLv3 and these
// cipher suites are obsolete and the default randomness source is a
// seedable PRNG; do not use it to protect real data.
package ssl

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"sslperf/internal/handshake"
	"sslperf/internal/lifecycle"
	"sslperf/internal/probe"
	"sslperf/internal/record"
	"sslperf/internal/rsa"
	"sslperf/internal/suite"
	"sslperf/internal/telemetry"
	"sslperf/internal/trace"
	"sslperf/internal/x509lite"
)

// Config carries the parameters for both connection ends.
type Config struct {
	// Rand is the randomness source; NewPRNG(seed) gives the
	// deterministic generator the experiments use. Defaults to a
	// time-seeded PRNG.
	Rand io.Reader

	// Suites restricts the cipher suites offered/accepted, in
	// preference order. Nil means all registered suites.
	Suites []suite.ID

	// Version selects the protocol: for clients the version to offer
	// (default SSL 3.0, the paper's protocol; record.VersionTLS10
	// enables the TLS 1.0 extension), for servers the maximum to
	// accept (default TLS 1.0, i.e. both).
	Version uint16

	// Time supplies the current time (certificate validity and hello
	// randoms). Defaults to time.Now.
	Time func() time.Time

	// Server side.
	Key *rsa.PrivateKey
	// Decrypter, when non-nil, handles the ClientKeyExchange RSA
	// decryption instead of Key — the hook for the batch RSA engine
	// (internal/rsabatch). Key remains required for DHE signing.
	Decrypter rsa.Decrypter
	CertDER   []byte
	// CertChain holds intermediate certificates (leaf's issuer
	// first) sent after the leaf.
	CertChain    [][]byte
	SessionCache *handshake.SessionCache

	// Client side.
	Session            *handshake.Session
	RootCert           *x509lite.Certificate
	ServerName         string
	InsecureSkipVerify bool

	// BulkPipelineWidth controls the record layer's flight-sealing
	// pipeline, the path Write takes for buffers larger than one
	// record: 0 (the default) gives the pipeline one MAC lane per
	// core, 1 disables parallel MAC computation (flights still seal
	// zero-copy and flush as one vectored write), and n > 1 caps the
	// lanes one flight uses. A negative width disables the flight path
	// entirely, so large writes take the sequential record-at-a-time
	// path — the baseline the bulk benchmarks compare against.
	BulkPipelineWidth int

	// Probes subscribes additional sinks to the connection's
	// instrumentation spine (internal/probe): every handshake step
	// boundary, attributed crypto call, record-layer cipher/MAC pass,
	// and record I/O event reaches each sink in order. Sinks shared
	// across connections must be safe for concurrent Emit calls. With
	// no probes, telemetry, or tracer configured the spine is off and
	// the hot path pays one nil test per hook.
	Probes []probe.Sink

	// Telemetry, when non-nil, receives live metrics and flight-
	// recorder events from every connection using this config:
	// handshake outcomes and latencies (with per-step histograms on
	// the server side), record/byte/alert counters, and step-by-step
	// event traces.
	//
	// Deprecated: Telemetry is a shim that wraps the registry in a
	// telemetry.ProbeSink on the spine; it remains fully supported,
	// but new integrations can subscribe via Probes directly.
	Telemetry *telemetry.Registry

	// Tracer, when non-nil, samples connections for per-connection
	// span tracing (internal/trace): handshake steps, crypto calls,
	// record-layer work, and application I/O become spans exported at
	// /debug/trace and folded into the live anatomy profiler. An
	// unsampled connection pays one sampling decision; a nil Tracer
	// pays one pointer test.
	//
	// Deprecated: Tracer is a shim that wraps sampled connections in
	// a trace.ProbeSink on the spine; it remains fully supported, but
	// new integrations can subscribe via Probes directly.
	Tracer *trace.Tracer

	// Lifecycle, when non-nil, registers every connection using this
	// config in the live connection table (internal/lifecycle): the
	// entry tracks the connection from construction through the
	// handshake's Table-2 steps to close, feeds the table's SLO
	// windows, and emits its structured close-log line. The entry
	// rides the connection's probe spine, so its step cursor and byte
	// counters agree with every other surface.
	Lifecycle *lifecycle.Table
}

func (c *Config) rand() io.Reader {
	if c.Rand != nil {
		return c.Rand
	}
	return NewPRNG(uint64(time.Now().UnixNano()))
}

// A Conn is one end of an SSL connection. Read/Write trigger the
// handshake on first use. Conn serializes access internally, but the
// handshake itself must not race with Read/Write from other
// goroutines.
type Conn struct {
	mu        sync.Mutex
	transport io.ReadWriteCloser
	layer     *record.Layer
	cfg       *Config
	isClient  bool

	handshakeDone bool
	result        *handshake.Result
	anatomy       *handshake.Anatomy
	telemetryID   uint64 // flight-recorder connection ID (0 = none)

	bus       *probe.Bus   // the connection's probe spine (nil = off)
	baseSinks []probe.Sink // sinks armed at handshake time
	cryptoObs func(op record.CryptoOp, bytes int, d time.Duration)

	lc *lifecycle.Conn // live table entry (nil = no table)

	ct           *trace.ConnTrace // non-nil only on sampled connections
	traceHS      uint64           // the trace's top-level handshake span
	traceOutcome string           // outcome Finish reports at Close

	// noFlight disables the large-write flight fast path (set by a
	// negative Config.BulkPipelineWidth).
	noFlight bool

	readBuf []byte
	eof     bool
	closed  bool
}

// ClientConn wraps transport as the client end.
func ClientConn(transport io.ReadWriteCloser, cfg *Config) *Conn {
	return newConn(transport, cfg, true)
}

// ServerConn wraps transport as the server end.
func ServerConn(transport io.ReadWriteCloser, cfg *Config) *Conn {
	return newConn(transport, cfg, false)
}

func newConn(transport io.ReadWriteCloser, cfg *Config, isClient bool) *Conn {
	c := &Conn{
		transport: transport,
		layer:     record.NewLayer(vectored(transport)),
		cfg:       cfg,
		isClient:  isClient,
	}
	if cfg.BulkPipelineWidth < 0 {
		c.noFlight = true
	} else if cfg.BulkPipelineWidth > 0 {
		c.layer.SetSealPipeline(cfg.BulkPipelineWidth)
	}
	if cfg.Lifecycle != nil {
		c.lc = cfg.Lifecycle.Register(remoteAddr(transport))
	}
	return c
}

// remoteAddr extracts the peer address when the transport has one
// (net.Conn does; in-memory pipes do not).
func remoteAddr(transport io.ReadWriteCloser) string {
	type remote interface{ RemoteAddr() net.Addr }
	if r, ok := transport.(remote); ok {
		if a := r.RemoteAddr(); a != nil {
			return a.String()
		}
	}
	return ""
}

// LifecycleEntry returns the connection's live table entry, nil when
// no Config.Lifecycle is attached.
func (c *Conn) LifecycleEntry() *lifecycle.Conn { return c.lc }

// SetAnatomy installs a recorder that will capture the server-side
// handshake anatomy (Table 2). Must be called before Handshake.
func (c *Conn) SetAnatomy(a *handshake.Anatomy) { c.anatomy = a }

// SetTrace attaches a pre-started connection trace (e.g. one begun at
// TCP accept so the accept span is on it). Must be called before
// Handshake; a nil ConnTrace is ignored. Without SetTrace, a
// Config.Tracer samples the connection when the handshake starts.
func (c *Conn) SetTrace(ct *trace.ConnTrace) {
	if ct != nil {
		c.ct = ct
	}
}

// Trace returns the connection's sampled trace, nil when the
// connection is not sampled.
func (c *Conn) Trace() *trace.ConnTrace { return c.ct }

// Handshake runs the handshake if it has not run yet.
func (c *Conn) Handshake() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.handshakeLocked()
}

func (c *Conn) handshakeLocked() error {
	if c.handshakeDone {
		return nil
	}
	if c.closed {
		return errors.New("ssl: connection closed")
	}
	tel := c.cfg.Telemetry
	var hsStart time.Time
	if tel != nil || c.lc != nil {
		hsStart = time.Now()
	}
	if tel != nil {
		c.telemetryStart(tel)
	}
	c.lc.HandshakeStart()
	if c.ct != nil || c.cfg.Tracer != nil {
		c.traceStart()
	}
	c.armProbes(tel)
	var err error
	if c.isClient {
		c.result, err = handshake.Client(c.layer, &handshake.ClientConfig{
			Rand:               c.cfg.rand(),
			Suites:             c.cfg.Suites,
			Time:               c.cfg.Time,
			Version:            c.cfg.Version,
			Session:            c.cfg.Session,
			RootCert:           c.cfg.RootCert,
			ServerName:         c.cfg.ServerName,
			InsecureSkipVerify: c.cfg.InsecureSkipVerify,
		})
	} else {
		// The anatomy (when any) is already a sink on the bus, so the
		// FSM gets the bus alone.
		c.result, err = handshake.Server(c.layer, &handshake.ServerConfig{
			Key:        c.cfg.Key,
			Decrypter:  c.cfg.Decrypter,
			CertDER:    c.cfg.CertDER,
			Chain:      c.cfg.CertChain,
			Rand:       c.cfg.rand(),
			Cache:      c.cfg.SessionCache,
			Suites:     c.cfg.Suites,
			Time:       c.cfg.Time,
			MaxVersion: c.cfg.Version,
			Probe:      c.bus,
		}, nil)
	}
	if tel != nil {
		c.telemetryFinish(tel, time.Since(hsStart), err)
	}
	if c.ct != nil {
		c.traceFinish(err)
	}
	if err != nil {
		c.lc.Failed(Classify(err), FailureReason(err), err.Error(), time.Since(hsStart))
		return err
	}
	if c.lc != nil {
		c.lc.Established(c.result.Suite.Name, c.result.Session.Version,
			c.result.Resumed, time.Since(hsStart))
	}
	c.handshakeDone = true
	return nil
}

// ConnectionState reports the negotiated parameters; valid after
// Handshake.
type ConnectionState struct {
	Suite     *suite.Suite
	Resumed   bool
	SessionID []byte
	Version   uint16 // record.VersionSSL30 or record.VersionTLS10
}

// ConnectionState returns the post-handshake state.
func (c *Conn) ConnectionState() (ConnectionState, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.handshakeDone {
		return ConnectionState{}, errors.New("ssl: handshake has not completed")
	}
	return ConnectionState{
		Suite:     c.result.Suite,
		Resumed:   c.result.Resumed,
		SessionID: c.result.Session.ID,
		Version:   c.result.Session.Version,
	}, nil
}

// Session returns the resumable session state; valid after Handshake.
func (c *Conn) Session() (*handshake.Session, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.handshakeDone {
		return nil, errors.New("ssl: handshake has not completed")
	}
	return c.result.Session, nil
}

// Write sends application data.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.handshakeLocked(); err != nil {
		return 0, err
	}
	if c.closed {
		return 0, errors.New("ssl: connection closed")
	}
	var ioStart time.Time
	if c.ct != nil {
		ioStart = time.Now()
	}
	// Large writes take the flight pipeline: fragments MACed in
	// parallel, sealed zero-copy in sequence order, and flushed as one
	// vectored write per window. Wire bytes are identical to the
	// sequential path's.
	var err error
	if len(p) > record.MaxFragment && !c.noFlight {
		err = c.layer.WriteFlight(record.TypeApplicationData, p)
	} else {
		err = c.layer.WriteRecord(record.TypeApplicationData, p)
	}
	if err != nil {
		return 0, err
	}
	if c.ct != nil {
		c.ct.Event("write", trace.CatIO, c.traceHS, ioStart, time.Since(ioStart))
	}
	return len(p), nil
}

// Read receives application data.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.handshakeLocked(); err != nil {
		return 0, err
	}
	for len(c.readBuf) == 0 {
		if c.eof {
			return 0, io.EOF
		}
		var ioStart time.Time
		if c.ct != nil {
			ioStart = time.Now()
		}
		typ, payload, err := c.layer.ReadRecord()
		if c.ct != nil && err == nil {
			c.ct.Event("read", trace.CatIO, c.traceHS, ioStart, time.Since(ioStart))
		}
		if err != nil {
			if ae, ok := err.(*record.AlertError); ok &&
				ae.Description == record.AlertCloseNotify {
				c.eof = true
				return 0, io.EOF
			}
			return 0, err
		}
		switch typ {
		case record.TypeApplicationData:
			c.readBuf = payload
		case record.TypeHandshake:
			// Ignore post-handshake handshake records (e.g.
			// HelloRequest); renegotiation is not supported.
		default:
			return 0, errors.New("ssl: unexpected record type " + typ.String())
		}
	}
	n := copy(p, c.readBuf)
	c.readBuf = c.readBuf[n:]
	return n, nil
}

// Close sends close_notify and closes the transport.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	c.lc.Draining()
	if c.handshakeDone {
		c.layer.SendClose() // best effort
	}
	if c.telemetryID != 0 {
		c.cfg.Telemetry.Event(c.telemetryID, telemetry.EventClose, "", "", 0)
	}
	if c.ct != nil {
		outcome := c.traceOutcome
		if outcome == "" {
			outcome = "closed_before_handshake"
		}
		c.ct.Finish(outcome)
	}
	err := c.transport.Close()
	c.lc.Close()
	c.lc = nil
	return err
}

// Stats returns the record-layer counters.
func (c *Conn) Stats() record.Stats { return c.layer.Stats }

// SetCryptoObserver routes bulk-phase record-layer crypto timings
// (cipher and MAC operations with payload sizes) to fn; pass nil to
// remove. Handshake-phase record work (the encrypted finished
// messages) is attributed to Table 2 rows on the spine instead, as it
// always was. The Figure 2 and Table 1 experiments use this to
// measure the crypto share of bulk transfers.
func (c *Conn) SetCryptoObserver(fn func(op record.CryptoOp, bytes int, d time.Duration)) {
	c.cryptoObs = fn
	c.refreshBus()
}
