package ssl

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"sslperf/internal/rsabatch"
	"sslperf/internal/suite"
	"sslperf/internal/telemetry"
	"sslperf/internal/x509lite"
)

// batchServerSetup is everything a batched server deploys: a shared-
// modulus key set, one certificate per key, and the running engine.
type batchServerSetup struct {
	ks     *rsabatch.KeySet
	certs  [][]byte
	engine *rsabatch.Engine
}

func newBatchSetup(t *testing.T, cfg rsabatch.Config) *batchServerSetup {
	t.Helper()
	rnd := NewPRNG(4242)
	ks, err := rsabatch.GenerateKeySet(rnd, 512, rsabatch.MaxBatch)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	certs := make([][]byte, len(ks.Keys))
	for i, key := range ks.Keys {
		cn := fmt.Sprintf("batch-key-%d", i)
		cert, err := x509lite.Create(rnd, cn, &key.PublicKey, cn, key,
			now.Add(-time.Hour), now.Add(24*time.Hour))
		if err != nil {
			t.Fatal(err)
		}
		certs[i] = cert.Raw
	}
	return &batchServerSetup{ks: ks, certs: certs, engine: rsabatch.NewEngine(ks, cfg)}
}

// serverConfig builds the per-connection server Config for set key i,
// the round-robin assignment a batched deployment uses.
func (s *batchServerSetup) serverConfig(i int, rnd *PRNG, tel *telemetry.Registry) *Config {
	i %= len(s.ks.Keys)
	return &Config{
		Rand:      rnd,
		Key:       s.ks.Keys[i],
		Decrypter: s.engine.Decrypter(i),
		CertDER:   s.certs[i],
		Suites:    []suite.ID{suite.RSAWithRC4128MD5},
		Telemetry: tel,
	}
}

// TestBatchedHandshakes32Concurrent is the acceptance-shaped run: 32
// concurrent full handshakes against engine-backed server configs
// (round-robin across the key set), with echo traffic, under the race
// detector when make check runs it. It also checks the engine's
// telemetry lands in the registry the /metrics endpoint serves.
func TestBatchedHandshakes32Concurrent(t *testing.T) {
	tel := telemetry.NewRegistry()
	setup := newBatchSetup(t, rsabatch.Config{
		BatchSize: 4,
		Linger:    2 * time.Millisecond,
		Rand:      NewPRNG(99),
		Telemetry: tel,
	})
	defer setup.engine.Close()

	const conns = 32
	var wg sync.WaitGroup
	for g := 0; g < conns; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each connection gets its own PRNGs: ssl.PRNG is not
			// thread-safe and must never be shared across goroutines.
			sCfg := setup.serverConfig(g, NewPRNG(uint64(1000+g)), tel)
			cCfg := &Config{Rand: NewPRNG(uint64(2000 + g)), InsecureSkipVerify: true}
			ct, st := Pipe()
			client := ClientConn(ct, cCfg)
			server := ServerConn(st, sCfg)
			errs := make(chan error, 1)
			go func() { errs <- client.Handshake() }()
			if err := server.Handshake(); err != nil {
				t.Errorf("conn %d: server handshake: %v", g, err)
				return
			}
			if err := <-errs; err != nil {
				t.Errorf("conn %d: client handshake: %v", g, err)
				return
			}
			msg := []byte(fmt.Sprintf("batched hello %d", g))
			done := make(chan struct{})
			go func() {
				defer close(done)
				buf := make([]byte, len(msg))
				if _, err := readFull(server, buf); err != nil {
					t.Errorf("conn %d: server read: %v", g, err)
					return
				}
				if _, err := server.Write(buf); err != nil {
					t.Errorf("conn %d: server write: %v", g, err)
				}
			}()
			if _, err := client.Write(msg); err != nil {
				t.Errorf("conn %d: client write: %v", g, err)
				return
			}
			echo := make([]byte, len(msg))
			if _, err := readFull(client, echo); err != nil {
				t.Errorf("conn %d: client read: %v", g, err)
				return
			}
			if !bytes.Equal(echo, msg) {
				t.Errorf("conn %d: echo mismatch", g)
			}
			<-done
			client.Close()
			server.Close()
		}(g)
	}
	wg.Wait()

	st := setup.engine.Stats()
	if st.Batched+st.Direct != conns {
		t.Fatalf("engine resolved %d decryptions, want %d (stats: %+v)",
			st.Batched+st.Direct, conns, st)
	}
	if st.Batched == 0 {
		t.Errorf("no decryption was batched across %d concurrent handshakes (stats: %+v)", conns, st)
	}

	snap := tel.Snapshot()
	if snap.Handshakes.Full != conns {
		t.Fatalf("telemetry counted %d full handshakes, want %d", snap.Handshakes.Full, conns)
	}
	wantValues := map[string]bool{
		rsabatch.MetricBatchSize:  false,
		rsabatch.MetricQueueDepth: false,
	}
	for _, v := range snap.Values {
		if _, ok := wantValues[v.Name]; ok {
			wantValues[v.Name] = v.Values.Count > 0
		}
	}
	for name, seen := range wantValues {
		if !seen {
			t.Errorf("telemetry value histogram %q missing or empty", name)
		}
	}
	foundLinger := false
	for _, h := range snap.Timers {
		if h.Name == rsabatch.MetricLinger && h.Latency.Count > 0 {
			foundLinger = true
		}
	}
	if !foundLinger {
		t.Errorf("telemetry timer histogram %q missing or empty", rsabatch.MetricLinger)
	}
}

// TestBatchedHandshakeFallbackKey checks a conventional e=65537
// identity still handshakes through DecrypterFor (the transparent
// fallback), with zero batched operations.
func TestBatchedHandshakeFallbackKey(t *testing.T) {
	setup := newBatchSetup(t, rsabatch.Config{Rand: NewPRNG(5)})
	defer setup.engine.Close()
	id := identity(t)
	sCfg := &Config{
		Rand:      NewPRNG(11),
		Key:       id.Key,
		Decrypter: setup.engine.DecrypterFor(id.Key),
		CertDER:   id.CertDER,
		Suites:    []suite.ID{suite.RSAWithRC4128MD5},
	}
	client, server := connect(t, clientCfg(nil), sCfg)
	defer client.Close()
	defer server.Close()
	if st := setup.engine.Stats(); st.Batched != 0 || st.Direct != 0 {
		t.Fatalf("foreign key touched the engine (stats: %+v)", st)
	}
}

// readFull reads exactly len(p) bytes from c.
func readFull(c *Conn, p []byte) (int, error) {
	total := 0
	for total < len(p) {
		n, err := c.Read(p[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
