package des

import (
	"encoding/binary"
	"time"

	"sslperf/internal/cipherinfo"
	"sslperf/internal/perf"
)

// Part names for the Table 6 breakdown.
const (
	PartIP           = "initial permutation"
	PartSubstitution = "substitution rounds"
	PartFP           = "final permutation"
)

// ProfileBlockParts times IP, the 16 substitution rounds, and FP over
// n blocks in batch (identical work to n block encryptions with the
// timer overhead amortized away), regenerating the DES column of
// Table 6.
func (c *Cipher) ProfileBlockParts(n int) *perf.Breakdown {
	return profileParts(n, [][16]uint64{c.enc})
}

// ProfileBlockParts does the same for 3DES: one IP, three sets of 16
// rounds, one FP — the paper's 3DES column where substitution grows
// ~3x while IP/FP stay flat.
func (t *TripleCipher) ProfileBlockParts(n int) *perf.Breakdown {
	return profileParts(n, [][16]uint64{t.k1enc, t.k2dec, t.k3enc})
}

func profileParts(n int, keySets [][16]uint64) *perf.Breakdown {
	b := perf.NewBreakdown()
	halves := make([][2]uint32, n)
	src := make([]byte, BlockSize)
	dst := make([]byte, BlockSize)

	start := time.Now()
	for i := range halves {
		v := permute(&ipTab, binary.BigEndian.Uint64(src))
		halves[i][0], halves[i][1] = uint32(v>>32), uint32(v)
	}
	b.Add(PartIP, time.Since(start))

	start = time.Now()
	for i := range halves {
		l, r := halves[i][0], halves[i][1]
		for k := range keySets {
			l, r = rounds16(l, r, &keySets[k])
		}
		halves[i][0], halves[i][1] = l, r
	}
	b.Add(PartSubstitution, time.Since(start))

	start = time.Now()
	for i := range halves {
		binary.BigEndian.PutUint64(dst,
			permute(&fpTab, uint64(halves[i][0])<<32|uint64(halves[i][1])))
	}
	b.Add(PartFP, time.Since(start))
	return b
}

// Characteristics returns the Table 4 row for DES.
func Characteristics() cipherinfo.Characteristics {
	return cipherinfo.Characteristics{
		Name:        "DES",
		BlockBits:   64,
		KeyBits:     "56",
		KeySchedule: "32,32b",
		Tables:      "8,64,32b",
		Rounds:      "16",
		Lookups:     8,
	}
}

// TripleCharacteristics returns the Table 4 row for 3DES.
func TripleCharacteristics() cipherinfo.Characteristics {
	return cipherinfo.Characteristics{
		Name:        "3DES",
		BlockBits:   64,
		KeyBits:     "3x56",
		KeySchedule: "3x(32,32b)",
		Tables:      "8,64,32b",
		Rounds:      "3x16",
		Lookups:     8,
	}
}

// traceBlock emits the abstract operation stream of one DES block op
// with the given number of 16-round sets (1 for DES, 3 for 3DES).
// Per the paper's Table 12, DES code is xor-heavy: the round does
// E-expansion (shifts/ands/rotates), key mixing xors, 8 SP lookups
// and 8 combining xors, with spilled state traffic.
func traceBlock(tr *perf.Trace, sets uint64) {
	// IP/FP: 8 lookups, 7 ors, byte extraction shifts/ands, load/store.
	permCost := func() {
		tr.Emit(perf.OpLookup, 8)
		tr.Emit(perf.OpOr, 7)
		tr.Emit(perf.OpShift, 7)
		tr.Emit(perf.OpAnd, 7)
		tr.Emit(perf.OpLoad, 2)
		tr.Emit(perf.OpStore, 2)
	}
	permCost() // IP
	rounds := 16 * sets
	// Per round, calibrated to the libdes code the paper traced
	// (~35 instructions/round): the rotate-based E expansion and key
	// mixing (2 xors + a few shifts/rotates), eight SP lookups each
	// needing a shift+mask extraction on average fused into address
	// modes half the time, the combining xors, and light spills.
	tr.Emit(perf.OpShift, 6*rounds)
	tr.Emit(perf.OpRotate, 2*rounds)
	tr.Emit(perf.OpAnd, 8*rounds)
	tr.Emit(perf.OpXor, 10*rounds)
	tr.Emit(perf.OpLookup, 8*rounds)
	tr.Emit(perf.OpLoad, 2*rounds)
	tr.Emit(perf.OpStore, 1*rounds)
	tr.Emit(perf.OpAdd, rounds)
	tr.Emit(perf.OpBranch, rounds)
	permCost() // FP
	tr.Bytes += BlockSize
}

// TraceEncryptBlock emits one DES block operation into tr.
func (c *Cipher) TraceEncryptBlock(tr *perf.Trace) { traceBlock(tr, 1) }

// TraceEncryptBlock emits one 3DES block operation into tr.
func (t *TripleCipher) TraceEncryptBlock(tr *perf.Trace) { traceBlock(tr, 3) }
