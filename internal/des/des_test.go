package des

import (
	"bytes"
	stddes "crypto/des"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"

	"sslperf/internal/perf"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// Classic DES known-answer vectors.
func TestDESKnownAnswers(t *testing.T) {
	cases := []struct{ key, pt, ct string }{
		// The canonical FIPS validation vector.
		{"133457799bbcdff1", "0123456789abcdef", "85e813540f0ab405"},
		// Weak-key style vector: all-zero key and plaintext.
		{"0000000000000000", "0000000000000000", "8ca64de9c1b123a7"},
		{"ffffffffffffffff", "ffffffffffffffff", "7359b2163e4edc58"},
	}
	for _, c := range cases {
		ci, err := New(mustHex(t, c.key))
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 8)
		ci.Encrypt(got, mustHex(t, c.pt))
		if hex.EncodeToString(got) != c.ct {
			t.Errorf("key %s: ct = %x, want %s", c.key, got, c.ct)
		}
		back := make([]byte, 8)
		ci.Decrypt(back, got)
		if hex.EncodeToString(back) != c.pt {
			t.Errorf("key %s: decrypt = %x, want %s", c.key, back, c.pt)
		}
	}
}

func TestRejectsBadKeySizes(t *testing.T) {
	if _, err := New(make([]byte, 7)); err == nil {
		t.Error("DES accepted 7-byte key")
	}
	if _, err := NewTriple(make([]byte, 8)); err == nil {
		t.Error("3DES accepted 8-byte key")
	}
	if _, err := NewTriple(make([]byte, 23)); err == nil {
		t.Error("3DES accepted 23-byte key")
	}
}

func TestDESAgainstStdlibProperty(t *testing.T) {
	f := func(key [8]byte, block [8]byte) bool {
		ours, err := New(key[:])
		if err != nil {
			return false
		}
		std, err := stddes.NewCipher(key[:])
		if err != nil {
			return false
		}
		got := make([]byte, 8)
		want := make([]byte, 8)
		ours.Encrypt(got, block[:])
		std.Encrypt(want, block[:])
		if !bytes.Equal(got, want) {
			return false
		}
		ours.Decrypt(got, block[:])
		std.Decrypt(want, block[:])
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func Test3DESAgainstStdlibProperty(t *testing.T) {
	f := func(key [24]byte, block [8]byte) bool {
		ours, err := NewTriple(key[:])
		if err != nil {
			return false
		}
		std, err := stddes.NewTripleDESCipher(key[:])
		if err != nil {
			return false
		}
		got := make([]byte, 8)
		want := make([]byte, 8)
		ours.Encrypt(got, block[:])
		std.Encrypt(want, block[:])
		if !bytes.Equal(got, want) {
			return false
		}
		ours.Decrypt(got, block[:])
		std.Decrypt(want, block[:])
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func Test3DESTwoKeyVariant(t *testing.T) {
	key := make([]byte, 16)
	rand.New(rand.NewSource(1)).Read(key)
	two, err := NewTriple(key)
	if err != nil {
		t.Fatal(err)
	}
	// Two-key 3DES == three-key with K3 = K1.
	key24 := append(append([]byte{}, key...), key[:8]...)
	three, err := NewTriple(key24)
	if err != nil {
		t.Fatal(err)
	}
	block := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	a := make([]byte, 8)
	b := make([]byte, 8)
	two.Encrypt(a, block)
	three.Encrypt(b, block)
	if !bytes.Equal(a, b) {
		t.Fatal("two-key 3DES != three-key with K3=K1")
	}
}

func Test3DESDegeneratesToDES(t *testing.T) {
	// With K1 = K2 = K3, EDE collapses to single DES.
	key := mustHex(t, "133457799bbcdff1")
	key24 := append(append(append([]byte{}, key...), key...), key...)
	triple, _ := NewTriple(key24)
	single, _ := New(key)
	block := mustHex(t, "0123456789abcdef")
	a := make([]byte, 8)
	b := make([]byte, 8)
	triple.Encrypt(a, block)
	single.Encrypt(b, block)
	if !bytes.Equal(a, b) {
		t.Fatal("EDE with equal keys != single DES")
	}
}

func TestEncryptDecryptInverseProperty(t *testing.T) {
	f := func(key [24]byte, block [8]byte) bool {
		c, err := NewTriple(key[:])
		if err != nil {
			return false
		}
		ct := make([]byte, 8)
		pt := make([]byte, 8)
		c.Encrypt(ct, block[:])
		c.Decrypt(pt, ct)
		return bytes.Equal(pt, block[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPermTablesInvertible(t *testing.T) {
	// FP(IP(x)) == x for random x.
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		v := r.Uint64()
		if got := permute(&fpTab, permute(&ipTab, v)); got != v {
			t.Fatalf("FP(IP(%#x)) = %#x", v, got)
		}
	}
}

func TestProfileBlockPartsShapes(t *testing.T) {
	key := make([]byte, 24)
	single, _ := New(key[:8])
	triple, _ := NewTriple(key)
	const n = 200000
	bd := single.ProfileBlockParts(n)
	bt := triple.ProfileBlockParts(n)
	// Table 6: substitution dominates both (74.7% DES, 89.1% 3DES).
	if pct := bd.Percent(PartSubstitution); pct < 50 {
		t.Fatalf("DES substitution = %.1f%%, want dominant\n%s", pct, bd)
	}
	if pct := bt.Percent(PartSubstitution); pct < 70 {
		t.Fatalf("3DES substitution = %.1f%%, want >70%%\n%s", pct, bt)
	}
	// 3DES substitution share must exceed DES's (IP/FP amortize).
	if bt.Percent(PartSubstitution) <= bd.Percent(PartSubstitution) {
		t.Fatal("3DES substitution share should exceed DES")
	}
	// Substitution time should scale ~3x between DES and 3DES.
	ratio := float64(bt.Elapsed(PartSubstitution)) / float64(bd.Elapsed(PartSubstitution))
	if ratio < 2.2 || ratio > 4.0 {
		t.Fatalf("3DES/DES substitution ratio = %.2f, want ~3", ratio)
	}
}

func TestCharacteristics(t *testing.T) {
	d := Characteristics()
	if d.Name != "DES" || d.Rounds != "16" || d.Lookups != 8 {
		t.Fatalf("DES characteristics = %+v", d)
	}
	td := TripleCharacteristics()
	if td.Name != "3DES" || td.Rounds != "3x16" {
		t.Fatalf("3DES characteristics = %+v", td)
	}
}

func TestTraceShapes(t *testing.T) {
	single, _ := New(make([]byte, 8))
	triple, _ := NewTriple(make([]byte, 24))
	var ts, tt perf.Trace
	single.TraceEncryptBlock(&ts)
	triple.TraceEncryptBlock(&tt)
	if ts.Bytes != 8 || tt.Bytes != 8 {
		t.Fatal("trace bytes wrong")
	}
	// Per Table 12 DES/3DES: xor is the top op class.
	if ts.Mix()[0].Op != perf.OpXor && ts.Mix()[0].Op != perf.OpAnd {
		// xor must at least beat memory classes individually
		t.Fatalf("DES mix head = %v", ts.Mix()[0])
	}
	if got := ts.Count(perf.OpXor); got < 16*8 {
		t.Fatalf("DES xor count = %d, too low", got)
	}
	// 3DES path length ~3x DES minus shared IP/FP.
	if tt.Total() <= 2*ts.Total() {
		t.Fatalf("3DES trace %d not ~3x DES %d", tt.Total(), ts.Total())
	}
	// Paper Table 11: DES 69 instr/byte, 3DES 194 instr/byte.
	if pl := ts.PathLength(); pl < 30 || pl > 150 {
		t.Fatalf("DES path length = %.1f, want ~69", pl)
	}
	if pl := tt.PathLength(); pl < 100 || pl > 400 {
		t.Fatalf("3DES path length = %.1f, want ~194", pl)
	}
}
