// Package des implements the DES and Triple-DES (EDE) block ciphers
// from scratch, structured the way the paper's Table 6 dissects them:
// an initial permutation (IP), sixteen Feistel rounds of key mixing +
// S-box substitution + P permutation (one set for DES, three for
// 3DES), and a final permutation (FP).
//
// Like OpenSSL's libdes code the paper measured, the S-boxes and the
// P permutation are fused into eight 64-entry 32-bit SP tables, and
// 3DES applies IP and FP once around the three sets of rounds (the
// middle permutations cancel).
package des

import (
	"encoding/binary"
	"errors"
)

// BlockSize is the DES block size in bytes.
const BlockSize = 8

// Spec permutation tables (FIPS 46-3). Entries are 1-indexed input
// bit positions, MSB first.
var ipSpec = [64]byte{
	58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
	62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
	57, 49, 41, 33, 25, 17, 9, 1, 59, 51, 43, 35, 27, 19, 11, 3,
	61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
}

var fpSpec = [64]byte{
	40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
	38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
	36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
	34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9, 49, 17, 57, 25,
}

var pc1 = [56]byte{
	57, 49, 41, 33, 25, 17, 9, 1, 58, 50, 42, 34, 26, 18,
	10, 2, 59, 51, 43, 35, 27, 19, 11, 3, 60, 52, 44, 36,
	63, 55, 47, 39, 31, 23, 15, 7, 62, 54, 46, 38, 30, 22,
	14, 6, 61, 53, 45, 37, 29, 21, 13, 5, 28, 20, 12, 4,
}

var pc2 = [48]byte{
	14, 17, 11, 24, 1, 5, 3, 28, 15, 6, 21, 10,
	23, 19, 12, 4, 26, 8, 16, 7, 27, 20, 13, 2,
	41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48,
	44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
}

var leftRotations = [16]byte{1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1}

// The eight S-boxes (FIPS 46-3), each 4 rows x 16 columns.
var sBoxes = [8][4][16]byte{
	{{14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7},
		{0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8},
		{4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0},
		{15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13}},
	{{15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10},
		{3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5},
		{0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15},
		{13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9}},
	{{10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8},
		{13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1},
		{13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7},
		{1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12}},
	{{7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15},
		{13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9},
		{10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4},
		{3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14}},
	{{2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9},
		{14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6},
		{4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14},
		{11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3}},
	{{12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11},
		{10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8},
		{9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6},
		{4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13}},
	{{4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1},
		{13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6},
		{1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2},
		{6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12}},
	{{13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7},
		{1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2},
		{7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8},
		{2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11}},
}

var pPerm = [32]byte{
	16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10,
	2, 8, 24, 14, 32, 27, 3, 9, 19, 13, 30, 6, 22, 11, 4, 25,
}

// Fused S-box + P tables: sp[i][v] is S-box i applied to the 6-bit
// value v, placed in its output nibble, with P applied — so one round
// is eight lookups XORed together.
var sp [8][64]uint32

// Byte-indexed permutation tables: ipTab[i][b] is the contribution of
// input byte i having value b to the permuted 64-bit output, making
// IP eight lookups + ORs instead of 64 bit moves; likewise fpTab.
var ipTab, fpTab [8][256]uint64

func buildPermTab(tab *[8][256]uint64, spec *[64]byte) {
	for byteIdx := 0; byteIdx < 8; byteIdx++ {
		for v := 0; v < 256; v++ {
			var out uint64
			for outBit := 0; outBit < 64; outBit++ {
				inBit := int(spec[outBit]) - 1 // 0-indexed from MSB
				if inBit/8 != byteIdx {
					continue
				}
				if v&(0x80>>uint(inBit%8)) != 0 {
					out |= 1 << uint(63-outBit)
				}
			}
			tab[byteIdx][v] = out
		}
	}
}

func init() {
	buildPermTab(&ipTab, &ipSpec)
	buildPermTab(&fpTab, &fpSpec)
	for i := 0; i < 8; i++ {
		for v := 0; v < 64; v++ {
			row := (v>>4)&2 | v&1
			col := (v >> 1) & 0xf
			s := sBoxes[i][row][col]
			// Place in nibble i of the 32-bit S output (S1 highest).
			word := uint32(s) << uint(28-4*i)
			// Apply P.
			var p uint32
			for outBit := 0; outBit < 32; outBit++ {
				inBit := int(pPerm[outBit]) - 1
				if word&(1<<uint(31-inBit)) != 0 {
					p |= 1 << uint(31-outBit)
				}
			}
			sp[i][v] = p
		}
	}
}

// permute applies a byte-indexed permutation table to a 64-bit block.
func permute(tab *[8][256]uint64, v uint64) uint64 {
	return tab[0][v>>56] | tab[1][v>>48&0xff] | tab[2][v>>40&0xff] |
		tab[3][v>>32&0xff] | tab[4][v>>24&0xff] | tab[5][v>>16&0xff] |
		tab[6][v>>8&0xff] | tab[7][v&0xff]
}

// expand computes the E expansion of r as a 48-bit value in 8 six-bit
// groups (group 0 in bits 47..42).
func expand(r uint32) uint64 {
	// v = r32 · r1..r32 · r1 (34 bits); group i = bits 33-4i..28-4i.
	v := uint64(r&1)<<33 | uint64(r)<<1 | uint64(r>>31)
	var e uint64
	for i := 0; i < 8; i++ {
		e = e<<6 | (v>>(28-4*i))&0x3f
	}
	return e
}

// feistel computes the DES round function f(r, k) for a 48-bit
// subkey: expansion, key mixing, and eight fused SP lookups.
func feistel(r uint32, k uint64) uint32 {
	x := expand(r) ^ k
	return sp[0][x>>42&0x3f] ^ sp[1][x>>36&0x3f] ^ sp[2][x>>30&0x3f] ^
		sp[3][x>>24&0x3f] ^ sp[4][x>>18&0x3f] ^ sp[5][x>>12&0x3f] ^
		sp[6][x>>6&0x3f] ^ sp[7][x&0x3f]
}

// subkeys derives the sixteen 48-bit round subkeys from an 8-byte key
// (parity bits ignored), the "key setup" of the paper's Figure 3.
func subkeys(key []byte) [16]uint64 {
	k64 := binary.BigEndian.Uint64(key)
	// PC1: 64 -> 56 bits.
	var cd uint64
	for i, bit := range pc1 {
		if k64&(1<<uint(64-bit)) != 0 {
			cd |= 1 << uint(55-i)
		}
	}
	c := uint32(cd >> 28)
	d := uint32(cd & 0x0fffffff)
	var out [16]uint64
	for round := 0; round < 16; round++ {
		n := uint(leftRotations[round])
		c = (c<<n | c>>(28-n)) & 0x0fffffff
		d = (d<<n | d>>(28-n)) & 0x0fffffff
		merged := uint64(c)<<28 | uint64(d)
		var k uint64
		for i, bit := range pc2 {
			if merged&(1<<uint(56-bit)) != 0 {
				k |= 1 << uint(47-i)
			}
		}
		out[round] = k
	}
	return out
}

// A Cipher is a single-DES cipher.
type Cipher struct {
	enc [16]uint64
	dec [16]uint64
}

// New expands an 8-byte key into a DES cipher.
func New(key []byte) (*Cipher, error) {
	if len(key) != 8 {
		return nil, errors.New("des: key must be 8 bytes")
	}
	c := &Cipher{}
	c.enc = subkeys(key)
	for i := range c.enc {
		c.dec[i] = c.enc[15-i]
	}
	return c, nil
}

// BlockSize returns 8.
func (c *Cipher) BlockSize() int { return BlockSize }

// rounds16 runs the 16 Feistel rounds (the paper's "substitution"
// part) including the final half swap.
func rounds16(l, r uint32, keys *[16]uint64) (uint32, uint32) {
	for i := 0; i < 16; i++ {
		l, r = r, l^feistel(r, keys[i])
	}
	return r, l
}

// Encrypt encrypts one 8-byte block.
func (c *Cipher) Encrypt(dst, src []byte) { c.crypt(dst, src, &c.enc) }

// Decrypt decrypts one 8-byte block.
func (c *Cipher) Decrypt(dst, src []byte) { c.crypt(dst, src, &c.dec) }

func (c *Cipher) crypt(dst, src []byte, keys *[16]uint64) {
	v := permute(&ipTab, binary.BigEndian.Uint64(src))
	l, r := uint32(v>>32), uint32(v)
	l, r = rounds16(l, r, keys)
	binary.BigEndian.PutUint64(dst, permute(&fpTab, uint64(l)<<32|uint64(r)))
}

// A TripleCipher is a 3DES (EDE3) cipher. As in libdes, IP and FP are
// applied once around the three sets of rounds; the inner
// permutations cancel algebraically.
type TripleCipher struct {
	k1enc, k1dec [16]uint64
	k2enc, k2dec [16]uint64
	k3enc, k3dec [16]uint64
}

// NewTriple expands a 24-byte key into an EDE3 cipher. A 16-byte key
// selects two-key 3DES (K3 = K1).
func NewTriple(key []byte) (*TripleCipher, error) {
	if len(key) != 16 && len(key) != 24 {
		return nil, errors.New("des: 3DES key must be 16 or 24 bytes")
	}
	t := &TripleCipher{}
	t.k1enc = subkeys(key[0:8])
	t.k2enc = subkeys(key[8:16])
	if len(key) == 24 {
		t.k3enc = subkeys(key[16:24])
	} else {
		t.k3enc = t.k1enc
	}
	rev := func(dst, src *[16]uint64) {
		for i := range src {
			dst[i] = src[15-i]
		}
	}
	rev(&t.k1dec, &t.k1enc)
	rev(&t.k2dec, &t.k2enc)
	rev(&t.k3dec, &t.k3enc)
	return t, nil
}

// BlockSize returns 8.
func (t *TripleCipher) BlockSize() int { return BlockSize }

// Encrypt encrypts one block: E(K3, D(K2, E(K1, ·))).
func (t *TripleCipher) Encrypt(dst, src []byte) {
	v := permute(&ipTab, binary.BigEndian.Uint64(src))
	l, r := uint32(v>>32), uint32(v)
	l, r = rounds16(l, r, &t.k1enc)
	l, r = rounds16(l, r, &t.k2dec)
	l, r = rounds16(l, r, &t.k3enc)
	binary.BigEndian.PutUint64(dst, permute(&fpTab, uint64(l)<<32|uint64(r)))
}

// Decrypt decrypts one block.
func (t *TripleCipher) Decrypt(dst, src []byte) {
	v := permute(&ipTab, binary.BigEndian.Uint64(src))
	l, r := uint32(v>>32), uint32(v)
	l, r = rounds16(l, r, &t.k3dec)
	l, r = rounds16(l, r, &t.k2enc)
	l, r = rounds16(l, r, &t.k1dec)
	binary.BigEndian.PutUint64(dst, permute(&fpTab, uint64(l)<<32|uint64(r)))
}
