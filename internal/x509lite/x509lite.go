// Package x509lite implements the minimal slice of X.509 needed for
// the SSL handshake's server Certificate message: v1 certificates
// with CN-only names, RSA public keys, and sha1WithRSAEncryption
// signatures. These are the "X509 functions" of the paper's Table 2
// step 3.
package x509lite

import (
	"errors"
	"fmt"
	"io"
	"time"

	"sslperf/internal/asn1lite"
	"sslperf/internal/bn"
	"sslperf/internal/rsa"
	"sslperf/internal/sha1x"
)

// Object identifiers used in certificates.
var (
	oidRSAEncryption = []uint32{1, 2, 840, 113549, 1, 1, 1}
	oidSHA1WithRSA   = []uint32{1, 2, 840, 113549, 1, 1, 5}
	oidCommonName    = []uint32{2, 5, 4, 3}
)

// A Certificate is a parsed (or to-be-issued) certificate.
type Certificate struct {
	SerialNumber *bn.Int
	SubjectCN    string
	IssuerCN     string
	NotBefore    time.Time
	NotAfter     time.Time
	PublicKey    *rsa.PublicKey

	// SigAlg is the signature AlgorithmIdentifier's OID. Parsing
	// tolerates algorithms this package cannot verify (certificates
	// from other stacks are still usable for their key when the
	// application skips verification); CheckSignature requires
	// sha1WithRSAEncryption.
	SigAlg []uint32

	Raw       []byte // full DER certificate
	RawTBS    []byte // DER TBSCertificate (the signed bytes)
	Signature []byte
}

// encodeName builds the single-RDN CN-only Name this package supports.
func encodeName(cn string) []byte {
	return asn1lite.EncodeSequence(
		asn1lite.EncodeSet(
			asn1lite.EncodeSequence(
				asn1lite.EncodeOID(oidCommonName...),
				asn1lite.EncodePrintableString(cn),
			),
		),
	)
}

func encodeAlgSHA1RSA() []byte {
	return asn1lite.EncodeSequence(
		asn1lite.EncodeOID(oidSHA1WithRSA...),
		asn1lite.EncodeNull(),
	)
}

// encodeSPKI builds the SubjectPublicKeyInfo for an RSA key.
func encodeSPKI(pub *rsa.PublicKey) []byte {
	rsaKey := asn1lite.EncodeSequence(
		asn1lite.EncodeInteger(pub.N),
		asn1lite.EncodeInteger(pub.E),
	)
	return asn1lite.EncodeSequence(
		asn1lite.EncodeSequence(
			asn1lite.EncodeOID(oidRSAEncryption...),
			asn1lite.EncodeNull(),
		),
		asn1lite.EncodeBitString(rsaKey),
	)
}

// Create issues a certificate for subjectCN holding pub, signed by
// issuerKey under issuerCN. Pass the same key and name for a
// self-signed certificate.
func Create(rnd io.Reader, subjectCN string, pub *rsa.PublicKey,
	issuerCN string, issuerKey *rsa.PrivateKey,
	notBefore, notAfter time.Time) (*Certificate, error) {

	serial, err := bn.New().Rand(rnd, 63, false)
	if err != nil {
		return nil, err
	}
	tbs := asn1lite.EncodeSequence(
		asn1lite.EncodeInteger(serial),
		encodeAlgSHA1RSA(),
		encodeName(issuerCN),
		asn1lite.EncodeSequence(
			asn1lite.EncodeUTCTime(notBefore),
			asn1lite.EncodeUTCTime(notAfter),
		),
		encodeName(subjectCN),
		encodeSPKI(pub),
	)
	digest := sha1x.Sum20(tbs)
	sig, err := issuerKey.SignPKCS1(rsa.HashSHA1, digest[:])
	if err != nil {
		return nil, err
	}
	raw := asn1lite.EncodeSequence(tbs, encodeAlgSHA1RSA(), asn1lite.EncodeBitString(sig))
	return Parse(raw)
}

// Parse decodes a DER certificate produced by this package (or any
// v1 sha1WithRSA certificate with CN-only names).
func Parse(der []byte) (*Certificate, error) {
	top, rest, err := asn1lite.Parse(der)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 || top.Tag != asn1lite.TagSequence {
		return nil, errors.New("x509lite: trailing bytes or not a SEQUENCE")
	}
	parts, err := top.Children()
	if err != nil {
		return nil, err
	}
	if len(parts) != 3 {
		return nil, errors.New("x509lite: certificate must have 3 elements")
	}
	cert := &Certificate{Raw: top.Raw, RawTBS: parts[0].Raw}

	// Signature algorithm + signature value. Unknown algorithms are
	// recorded and rejected only at verification time.
	if cert.SigAlg, err = algOID(parts[1]); err != nil {
		return nil, err
	}
	sig, err := parts[2].BitString()
	if err != nil {
		return nil, err
	}
	cert.Signature = sig

	// TBSCertificate.
	tbsParts, err := parts[0].Children()
	if err != nil {
		return nil, err
	}
	if len(tbsParts) < 6 {
		return nil, errors.New("x509lite: TBS too short")
	}
	i := 0
	if tbsParts[0].Class() == 2 { // optional [0] version
		i = 1
	}
	if cert.SerialNumber, err = tbsParts[i].Integer(); err != nil {
		return nil, err
	}
	if _, err := algOID(tbsParts[i+1]); err != nil {
		return nil, err
	}
	if cert.IssuerCN, err = parseName(tbsParts[i+2]); err != nil {
		return nil, err
	}
	validity, err := tbsParts[i+3].Children()
	if err != nil || len(validity) != 2 {
		return nil, errors.New("x509lite: bad validity")
	}
	if cert.NotBefore, err = validity[0].UTCTime(); err != nil {
		return nil, err
	}
	if cert.NotAfter, err = validity[1].UTCTime(); err != nil {
		return nil, err
	}
	if cert.SubjectCN, err = parseName(tbsParts[i+4]); err != nil {
		return nil, err
	}
	if cert.PublicKey, err = parseSPKI(tbsParts[i+5]); err != nil {
		return nil, err
	}
	return cert, nil
}

func algOID(v asn1lite.Value) ([]uint32, error) {
	kids, err := v.Children()
	if err != nil || len(kids) < 1 {
		return nil, errors.New("x509lite: bad AlgorithmIdentifier")
	}
	return kids[0].OID()
}

func parseName(v asn1lite.Value) (string, error) {
	rdns, err := v.Children()
	if err != nil {
		return "", err
	}
	for _, rdn := range rdns {
		avas, err := rdn.Children()
		if err != nil {
			return "", err
		}
		for _, ava := range avas {
			kids, err := ava.Children()
			if err != nil || len(kids) != 2 {
				return "", errors.New("x509lite: bad AVA")
			}
			oid, err := kids[0].OID()
			if err != nil {
				return "", err
			}
			if asn1lite.OIDEqual(oid, oidCommonName) {
				return kids[1].String()
			}
		}
	}
	return "", errors.New("x509lite: no CN in name")
}

func parseSPKI(v asn1lite.Value) (*rsa.PublicKey, error) {
	kids, err := v.Children()
	if err != nil || len(kids) != 2 {
		return nil, errors.New("x509lite: bad SPKI")
	}
	alg, err := kids[0].Children()
	if err != nil || len(alg) < 1 {
		return nil, errors.New("x509lite: bad SPKI algorithm")
	}
	oid, err := alg[0].OID()
	if err != nil {
		return nil, err
	}
	if !asn1lite.OIDEqual(oid, oidRSAEncryption) {
		return nil, fmt.Errorf("x509lite: unsupported key algorithm %v", oid)
	}
	keyBits, err := kids[1].BitString()
	if err != nil {
		return nil, err
	}
	keyVal, rest, err := asn1lite.Parse(keyBits)
	if err != nil || len(rest) != 0 {
		return nil, errors.New("x509lite: bad RSAPublicKey")
	}
	nums, err := keyVal.Children()
	if err != nil || len(nums) != 2 {
		return nil, errors.New("x509lite: bad RSAPublicKey structure")
	}
	n, err := nums[0].Integer()
	if err != nil {
		return nil, err
	}
	e, err := nums[1].Integer()
	if err != nil {
		return nil, err
	}
	return &rsa.PublicKey{N: n, E: e}, nil
}

// CheckSignatureFrom verifies that parent's key signed c.
func (c *Certificate) CheckSignatureFrom(parent *Certificate) error {
	return c.CheckSignature(parent.PublicKey)
}

// CheckSignature verifies c's signature with the given key. Only
// sha1WithRSAEncryption signatures can be verified.
func (c *Certificate) CheckSignature(pub *rsa.PublicKey) error {
	if !asn1lite.OIDEqual(c.SigAlg, oidSHA1WithRSA) {
		return fmt.Errorf("x509lite: cannot verify signature algorithm %v", c.SigAlg)
	}
	digest := sha1x.Sum20(c.RawTBS)
	return pub.VerifyPKCS1(rsa.HashSHA1, digest[:], c.Signature)
}

// ValidAt reports whether now falls within the validity window.
func (c *Certificate) ValidAt(now time.Time) bool {
	return !now.Before(c.NotBefore) && !now.After(c.NotAfter)
}
