package x509lite

import (
	"testing"
	"time"

	"sslperf/internal/rsa"
)

// FuzzParse feeds the certificate parser arbitrary DER; it must never
// panic, and a certificate it accepts must have a usable public key.
func FuzzParse(f *testing.F) {
	// Seed with a real certificate and simple mutants.
	key, err := rsa.GenerateKey(newRandReader(776), 512)
	if err != nil {
		f.Fatal(err)
	}
	cert, err := Create(newRandReader(777), "fuzz-seed", &key.PublicKey,
		"fuzz-seed", key,
		time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(cert.Raw)
	f.Add(cert.Raw[:len(cert.Raw)/2])
	f.Add([]byte{0x30, 0x03, 0x02, 0x01, 0x01})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Parse(data)
		if err != nil {
			return
		}
		if c.PublicKey == nil || c.PublicKey.N == nil {
			t.Fatal("accepted certificate without a key")
		}
		// These must not panic on accepted certificates.
		c.ValidAt(time.Now())
		c.CheckSignature(c.PublicKey)
	})
}
