package x509lite

import (
	stdx509 "crypto/x509"
	"math/rand"
	"sync"
	"testing"
	"time"

	"sslperf/internal/rsa"
)

type randReader struct{ r *rand.Rand }

func newRandReader(seed int64) *randReader {
	return &randReader{r: rand.New(rand.NewSource(seed))}
}

func (rr *randReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(rr.r.Intn(256))
	}
	return len(p), nil
}

var (
	keyOnce sync.Once
	caKey   *rsa.PrivateKey
	srvKey  *rsa.PrivateKey
)

func keys(t *testing.T) (*rsa.PrivateKey, *rsa.PrivateKey) {
	t.Helper()
	keyOnce.Do(func() {
		var err error
		if caKey, err = rsa.GenerateKey(newRandReader(2001), 512); err != nil {
			panic(err)
		}
		if srvKey, err = rsa.GenerateKey(newRandReader(2002), 512); err != nil {
			panic(err)
		}
	})
	return caKey, srvKey
}

var (
	notBefore = time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)
	notAfter  = time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)
)

func TestSelfSignedRoundTrip(t *testing.T) {
	ca, _ := keys(t)
	cert, err := Create(newRandReader(1), "test-server", &ca.PublicKey,
		"test-server", ca, notBefore, notAfter)
	if err != nil {
		t.Fatal(err)
	}
	if cert.SubjectCN != "test-server" || cert.IssuerCN != "test-server" {
		t.Fatalf("names: %q / %q", cert.SubjectCN, cert.IssuerCN)
	}
	if !cert.NotBefore.Equal(notBefore) || !cert.NotAfter.Equal(notAfter) {
		t.Fatalf("validity: %v - %v", cert.NotBefore, cert.NotAfter)
	}
	if !cert.PublicKey.N.Equal(ca.N) {
		t.Fatal("public key mismatch")
	}
	if err := cert.CheckSignatureFrom(cert); err != nil {
		t.Fatalf("self-signature: %v", err)
	}
}

func TestChainSignature(t *testing.T) {
	ca, srv := keys(t)
	caCert, err := Create(newRandReader(2), "test-ca", &ca.PublicKey,
		"test-ca", ca, notBefore, notAfter)
	if err != nil {
		t.Fatal(err)
	}
	srvCert, err := Create(newRandReader(3), "server.example", &srv.PublicKey,
		"test-ca", ca, notBefore, notAfter)
	if err != nil {
		t.Fatal(err)
	}
	if err := srvCert.CheckSignatureFrom(caCert); err != nil {
		t.Fatalf("chain verify: %v", err)
	}
	// Verifying against the wrong issuer must fail.
	if err := srvCert.CheckSignature(&srv.PublicKey); err == nil {
		t.Fatal("verified against wrong key")
	}
}

func TestParseReencode(t *testing.T) {
	ca, _ := keys(t)
	cert, err := Create(newRandReader(4), "reparse", &ca.PublicKey,
		"reparse", ca, notBefore, notAfter)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(cert.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if again.SubjectCN != cert.SubjectCN || !again.SerialNumber.Equal(cert.SerialNumber) {
		t.Fatal("re-parse differs")
	}
	if err := again.CheckSignatureFrom(cert); err != nil {
		t.Fatal(err)
	}
}

func TestStdlibCanParseOurCert(t *testing.T) {
	ca, _ := keys(t)
	cert, err := Create(newRandReader(5), "interop", &ca.PublicKey,
		"interop", ca, notBefore, notAfter)
	if err != nil {
		t.Fatal(err)
	}
	std, err := stdx509.ParseCertificate(cert.Raw)
	if err != nil {
		t.Fatalf("crypto/x509 rejected our DER: %v", err)
	}
	if std.Subject.CommonName != "interop" {
		t.Fatalf("stdlib CN = %q", std.Subject.CommonName)
	}
	if std.SerialNumber.Text(16) != cert.SerialNumber.Hex() {
		t.Fatalf("stdlib serial %s != %s", std.SerialNumber.Text(16), cert.SerialNumber.Hex())
	}
	// 512-bit sha1WithRSA is long obsolete, so stdlib refuses the
	// signature check — structural parse agreement is the interop
	// point here; our own CheckSignature covers validity.
	if err := cert.CheckSignatureFrom(cert); err != nil {
		t.Fatal(err)
	}
}

func TestTamperedCertFailsVerify(t *testing.T) {
	ca, _ := keys(t)
	cert, err := Create(newRandReader(6), "tamper", &ca.PublicKey,
		"tamper", ca, notBefore, notAfter)
	if err != nil {
		t.Fatal(err)
	}
	raw := append([]byte{}, cert.Raw...)
	// Flip a bit inside the TBS (the subject CN bytes).
	for i := range raw {
		if raw[i] == 't' && raw[i+1] == 'a' && raw[i+2] == 'm' {
			raw[i] ^= 1
			break
		}
	}
	mut, err := Parse(raw)
	if err != nil {
		t.Skip("mutation made cert unparseable; fine")
	}
	if err := mut.CheckSignatureFrom(cert); err == nil {
		t.Fatal("tampered certificate verified")
	}
}

func TestValidAt(t *testing.T) {
	ca, _ := keys(t)
	cert, _ := Create(newRandReader(7), "valid", &ca.PublicKey,
		"valid", ca, notBefore, notAfter)
	if !cert.ValidAt(time.Date(2005, 6, 1, 0, 0, 0, 0, time.UTC)) {
		t.Fatal("should be valid mid-window")
	}
	if cert.ValidAt(time.Date(2004, 6, 1, 0, 0, 0, 0, time.UTC)) {
		t.Fatal("valid before NotBefore")
	}
	if cert.ValidAt(time.Date(2007, 6, 1, 0, 0, 0, 0, time.UTC)) {
		t.Fatal("valid after NotAfter")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte{0x30, 0x03, 1, 2, 3}); err == nil {
		t.Fatal("accepted garbage")
	}
	if _, err := Parse(nil); err == nil {
		t.Fatal("accepted empty")
	}
}
