package webmodel

import (
	"time"

	"sslperf/internal/perf"
)

// Table 1 component names, as the paper labels them.
const (
	ComponentLibcrypto = "libcrypto"
	ComponentLibssl    = "libssl"
	ComponentHTTPD     = "httpd"
	ComponentVMLinux   = "vmlinux"
	ComponentOther     = "other"
)

// EnvironmentModel carries the modeled (non-measured) per-transaction
// costs of the web-server environment: the Apache request handling,
// the kernel's TCP/socket work, and the remaining libraries. Costs
// are in model cycles (perf.ModelGHz), split into a fixed
// per-transaction part and a per-payload-byte part.
//
// The defaults are calibrated so that at the paper's operating point
// (1 KB response, DES-CBC3-SHA, full handshake) the non-SSL
// components sit in the same proportion to the measured SSL cost as
// in the paper's Table 1 (httpd 1.84%, vmlinux 17.51%, other 9.00%
// against libcrypto+libssl 71.65%). From there every other file size
// is extrapolation: the kernel cost grows per byte (packetization,
// copies), httpd and libc are mostly fixed per request.
type EnvironmentModel struct {
	HTTPDFixed  float64 // cycles per transaction
	HTTPDPerKB  float64 // cycles per KB of response
	KernelFixed float64 // cycles per transaction (TCP setup/teardown)
	KernelPerKB float64 // cycles per KB (segmentation, copies, interrupts)
	OtherFixed  float64
	OtherPerKB  float64
}

// CalibrateEnvironment builds the model from a measured SSL cost at
// the 1 KB point, reproducing the paper's Table 1 ratios there.
func CalibrateEnvironment(sslAt1KB time.Duration) EnvironmentModel {
	sslCycles := perf.Cycles(sslAt1KB)
	// Paper Table 1 shares: ssl = 71.65, httpd = 1.84, kernel =
	// 17.51, other = 9.00. Scale each against the measured SSL cost.
	httpd := sslCycles * 1.84 / 71.65
	kernel := sslCycles * 17.51 / 71.65
	other := sslCycles * 9.00 / 71.65
	return EnvironmentModel{
		// Apache work is dominated by request parsing and dispatch:
		// 90% fixed, the rest scales with the response it shovels.
		HTTPDFixed: 0.9 * httpd,
		HTTPDPerKB: 0.1 * httpd, // at the 1KB calibration point
		// Kernel work splits between connection handling and
		// per-byte segmentation/copying; at 1KB with handshake
		// packets dominating, call it 60/40.
		KernelFixed: 0.6 * kernel,
		KernelPerKB: 0.4 * kernel,
		OtherFixed:  0.8 * other,
		OtherPerKB:  0.2 * other,
	}
}

// Transaction composes the measured SSL result with the modeled
// environment into a Table 1-style breakdown (values in cycles).
func (m EnvironmentModel) Transaction(res *TransactionResult) *perf.Breakdown {
	b := perf.NewBreakdown()
	kb := float64(res.BytesSent) / 1024
	b.Add(ComponentLibcrypto, res.Crypto.Total())
	b.Add(ComponentLibssl, res.SSLNonCrypto())
	b.Add(ComponentHTTPD, perf.Duration(m.HTTPDFixed+m.HTTPDPerKB*kb))
	b.Add(ComponentVMLinux, perf.Duration(m.KernelFixed+m.KernelPerKB*kb))
	b.Add(ComponentOther, perf.Duration(m.OtherFixed+m.OtherPerKB*kb))
	return b
}
