package webmodel

import (
	"sync"
	"testing"
	"time"

	"sslperf/internal/ssl"
	"sslperf/internal/suite"
	"sslperf/internal/workload"
)

var (
	idOnce sync.Once
	testID *ssl.Identity
)

func identity(t testing.TB) *ssl.Identity {
	t.Helper()
	idOnce.Do(func() {
		var err error
		// 1024-bit key, the paper's web-server configuration.
		testID, err = ssl.NewIdentity(ssl.NewPRNG(99), 1024, "webmodel-test", time.Now())
		if err != nil {
			panic(err)
		}
	})
	return testID
}

func newServer(t testing.TB) *Server {
	s, err := suite.ByName("DES-CBC3-SHA")
	if err != nil {
		t.Fatal(err)
	}
	return NewServer(identity(t), s)
}

func TestRunTransactionMeasures(t *testing.T) {
	srv := newServer(t)
	res, sess, err := srv.RunTransaction(1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed {
		t.Fatal("first transaction cannot be resumed")
	}
	if res.BytesSent != 1024 {
		t.Fatalf("sent %d bytes", res.BytesSent)
	}
	if res.Crypto.Public == 0 {
		t.Fatal("no RSA time measured")
	}
	if res.Crypto.Private == 0 || res.Crypto.Hash == 0 {
		t.Fatalf("bulk crypto not measured: %+v", res.Crypto)
	}
	if res.SSLTotal < res.Crypto.Total() {
		t.Fatal("SSL total below crypto total")
	}
	if sess == nil || len(sess.ID) == 0 {
		t.Fatal("no session returned")
	}
}

// The paper's headline: at small file sizes the public-key operation
// dominates the crypto time (~90% at 1 KB), and its share shrinks as
// the file grows while private-key encryption and hashing grow.
func TestFigure2Shape(t *testing.T) {
	srv := newServer(t)
	shareAt := func(size int) (public, private, hash float64) {
		var agg CryptoSplit
		// Average a few runs to stabilize.
		for i := 0; i < 3; i++ {
			res, _, err := srv.RunTransaction(size, nil)
			if err != nil {
				t.Fatal(err)
			}
			agg.Add(res.Crypto)
		}
		total := float64(agg.Total())
		return 100 * float64(agg.Public) / total,
			100 * float64(agg.Private) / total,
			100 * float64(agg.Hash) / total
	}
	pub1, priv1, _ := shareAt(1 << 10)
	pub32, priv32, _ := shareAt(32 << 10)
	if pub1 < 50 {
		t.Fatalf("public share at 1KB = %.1f%%, want dominant (paper ~90%%)", pub1)
	}
	if pub32 >= pub1 {
		t.Fatalf("public share should fall with size: %.1f%% -> %.1f%%", pub1, pub32)
	}
	if priv32 <= priv1 {
		t.Fatalf("private share should grow with size: %.1f%% -> %.1f%%", priv1, priv32)
	}
}

func TestResumptionSkipsRSA(t *testing.T) {
	srv := newServer(t)
	_, sess, err := srv.RunTransaction(1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	res2, _, err := srv.RunTransaction(1024, sess)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Resumed {
		t.Fatal("second transaction did not resume")
	}
	if res2.Crypto.Public != 0 {
		t.Fatalf("resumed session still paid %v of RSA", res2.Crypto.Public)
	}
}

func TestRunSessionMultipleTransactions(t *testing.T) {
	srv := newServer(t)
	txs := []workload.Transaction{
		{RequestLen: 100, ResponseLen: 2048},
		{RequestLen: 100, ResponseLen: 4096},
	}
	res, _, err := srv.RunSession(txs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesSent != 2048+4096 {
		t.Fatalf("sent %d", res.BytesSent)
	}
}

func TestEnvironmentModelCalibration(t *testing.T) {
	ssl1KB := 5 * time.Millisecond
	m := CalibrateEnvironment(ssl1KB)
	res := &TransactionResult{
		Crypto:    CryptoSplit{Public: 4 * time.Millisecond, Hash: time.Millisecond},
		SSLTotal:  5 * time.Millisecond,
		BytesSent: 1024,
	}
	b := m.Transaction(res)
	// At the calibration point the shares must reproduce Table 1.
	if got := b.Percent(ComponentLibcrypto) + b.Percent(ComponentLibssl); got < 69 || got > 74 {
		t.Fatalf("ssl share = %.1f%%, want ~71.65%%\n%s", got, b)
	}
	if got := b.Percent(ComponentVMLinux); got < 15 || got > 20 {
		t.Fatalf("kernel share = %.1f%%, want ~17.5%%", got)
	}
	if got := b.Percent(ComponentHTTPD); got > 4 {
		t.Fatalf("httpd share = %.1f%%, want ~1.8%%", got)
	}
}

func TestEnvironmentModelExtrapolation(t *testing.T) {
	m := CalibrateEnvironment(5 * time.Millisecond)
	small := &TransactionResult{
		Crypto: CryptoSplit{Public: 4 * time.Millisecond}, SSLTotal: 5 * time.Millisecond,
		BytesSent: 1024,
	}
	// A 32x larger response must increase the modeled kernel cost.
	big := &TransactionResult{
		Crypto:   CryptoSplit{Public: 4 * time.Millisecond, Private: 2 * time.Millisecond},
		SSLTotal: 7 * time.Millisecond, BytesSent: 32 * 1024,
	}
	bs := m.Transaction(small)
	bb := m.Transaction(big)
	if bb.Elapsed(ComponentVMLinux) <= bs.Elapsed(ComponentVMLinux) {
		t.Fatal("kernel cost did not grow with bytes")
	}
}

func TestCryptoSplitBreakdownOrder(t *testing.T) {
	c := CryptoSplit{Public: 1, Private: 2, Hash: 3, Other: 4}
	names := c.Breakdown().Names()
	want := []string{"public", "private", "hash", "other"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("order = %v", names)
		}
	}
	if c.Total() != 10 {
		t.Fatalf("total = %d", c.Total())
	}
}
