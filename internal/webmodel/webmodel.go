// Package webmodel reproduces the paper's web-server environment
// measurements. The SSL side of an HTTPS transaction — handshake and
// bulk transfer — is *measured* on this library's own stack over an
// in-memory transport; the non-SSL components the paper reports in
// Table 1 (Apache httpd, the Linux kernel's TCP stack, libc) are
// *modeled* with per-request and per-byte cost coefficients
// calibrated once against the paper's own Table 1 at the 1 KB point.
//
// The shape that matters — how the crypto share moves as the file
// size grows (Figure 2), and how SSL dwarfs the server application —
// then emerges from measurement, not from the calibration.
package webmodel

import (
	"errors"
	"io"
	"time"

	"sslperf/internal/handshake"
	"sslperf/internal/perf"
	"sslperf/internal/record"
	"sslperf/internal/ssl"
	"sslperf/internal/suite"
	"sslperf/internal/workload"
)

// CryptoSplit attributes server-side crypto time to the paper's four
// Figure 2 categories.
type CryptoSplit struct {
	Public  time.Duration // RSA private-key op (the handshake's key exchange)
	Private time.Duration // bulk cipher (and finished-message) operations
	Hash    time.Duration // MACs, key derivation, transcript hashes
	Other   time.Duration // randomness, X509, miscellany
}

// Total sums the four categories.
func (c CryptoSplit) Total() time.Duration {
	return c.Public + c.Private + c.Hash + c.Other
}

// Add accumulates another split.
func (c *CryptoSplit) Add(o CryptoSplit) {
	c.Public += o.Public
	c.Private += o.Private
	c.Hash += o.Hash
	c.Other += o.Other
}

// Scale divides every category by n (for averaging over runs).
func (c *CryptoSplit) Scale(n int) {
	if n <= 0 {
		return
	}
	d := time.Duration(n)
	c.Public /= d
	c.Private /= d
	c.Hash /= d
	c.Other /= d
}

// Breakdown renders the split as a perf.Breakdown in Figure 2's
// category order.
func (c CryptoSplit) Breakdown() *perf.Breakdown {
	b := perf.NewBreakdown()
	b.Add("public", c.Public)
	b.Add("private", c.Private)
	b.Add("hash", c.Hash)
	b.Add("other", c.Other)
	return b
}

// TransactionResult is the measured server-side cost of one HTTPS
// transaction.
type TransactionResult struct {
	Crypto    CryptoSplit
	SSLTotal  time.Duration      // all server-side SSL work (crypto + framing)
	Anatomy   *handshake.Anatomy // per-step handshake record
	Resumed   bool
	BytesSent int
}

// SSLNonCrypto is the libssl share: SSL work that is not crypto.
func (r *TransactionResult) SSLNonCrypto() time.Duration {
	nc := r.SSLTotal - r.Crypto.Total()
	if nc < 0 {
		return 0
	}
	return nc
}

// Server is a reusable measured SSL server endpoint.
type Server struct {
	Identity *ssl.Identity
	Suite    *suite.Suite
	Cache    *handshake.SessionCache
	Seed     uint64
	// Version pins the protocol version (0 = SSL 3.0, the paper's).
	Version uint16
}

// NewServer builds a measurement server with a session cache.
func NewServer(id *ssl.Identity, s *suite.Suite) *Server {
	return &Server{
		Identity: id,
		Suite:    s,
		Cache:    handshake.NewSessionCache(4096),
		Seed:     1,
	}
}

// RunTransaction performs one HTTPS-like exchange: the client sends a
// request, the server responds with fileSize bytes. It returns the
// measured server-side result and the session (for resumption).
func (srv *Server) RunTransaction(fileSize int, resume *handshake.Session) (*TransactionResult, *handshake.Session, error) {
	return srv.RunSession([]workload.Transaction{
		{RequestLen: workload.DefaultRequestLen, ResponseLen: fileSize},
	}, resume)
}

// RunSession performs a full SSL session carrying the given
// transactions, measuring the server side.
func (srv *Server) RunSession(txs []workload.Transaction, resume *handshake.Session) (*TransactionResult, *handshake.Session, error) {
	srv.Seed += 2
	ct, st := ssl.Pipe()

	clientCfg := &ssl.Config{
		Rand:               ssl.NewPRNG(srv.Seed),
		Suites:             []suite.ID{srv.Suite.ID},
		InsecureSkipVerify: true,
		Session:            resume,
		Version:            srv.Version,
	}
	serverCfg := &ssl.Config{
		Rand:         ssl.NewPRNG(srv.Seed + 1),
		Key:          srv.Identity.Key,
		CertDER:      srv.Identity.CertDER,
		SessionCache: srv.Cache,
		Version:      srv.Version,
	}

	client := ssl.ClientConn(ct, clientCfg)
	server := ssl.ServerConn(st, serverCfg)

	anatomy := handshake.NewAnatomy()
	server.SetAnatomy(anatomy)

	res := &TransactionResult{Anatomy: anatomy}
	// Observe bulk crypto: cipher ops count as private-key
	// encryption, MAC ops as hashing (Figure 2's categories).
	server.SetCryptoObserver(func(op record.CryptoOp, n int, d time.Duration) {
		switch op {
		case record.OpCipherEncrypt, record.OpCipherDecrypt:
			res.Crypto.Private += d
		case record.OpMACCompute, record.OpMACVerify:
			res.Crypto.Hash += d
		}
	})

	// Drive the client in a goroutine.
	clientErr := make(chan error, 1)
	go func() {
		defer client.Close()
		for _, tx := range txs {
			req := workload.Payload(tx.RequestLen)
			if _, err := client.Write(req); err != nil {
				clientErr <- err
				return
			}
			buf := make([]byte, tx.ResponseLen)
			if _, err := io.ReadFull(client, buf); err != nil {
				clientErr <- err
				return
			}
		}
		clientErr <- nil
	}()

	// Server side, measured. Transport stalls (waiting for the
	// client's bytes) are excluded via the pipe's ReadWait counter,
	// so SSLTotal reflects server-side processing only.
	waiter, _ := st.(ssl.ReadWaiter)
	readWait := func() time.Duration {
		if waiter == nil {
			return 0
		}
		return waiter.ReadWait()
	}
	waitStart := readWait()
	var sslTimer perf.Timer
	sslTimer.Start()
	if err := server.Handshake(); err != nil {
		sslTimer.Stop()
		return nil, nil, err
	}
	sslTimer.Stop()

	for _, tx := range txs {
		buf := make([]byte, tx.RequestLen)
		sslTimer.Start()
		_, err := io.ReadFull(server, buf)
		sslTimer.Stop()
		if err != nil {
			return nil, nil, err
		}
		resp := workload.Payload(tx.ResponseLen)
		sslTimer.Start()
		_, err = server.Write(resp)
		sslTimer.Stop()
		if err != nil {
			return nil, nil, err
		}
		res.BytesSent += tx.ResponseLen
	}
	if err := <-clientErr; err != nil {
		return nil, nil, err
	}
	server.Close()

	// Fold the handshake's crypto calls into the categories.
	cb := anatomy.CryptoBreakdown()
	res.Crypto.Public += cb.Elapsed(handshake.CategoryPublic)
	res.Crypto.Private += cb.Elapsed(handshake.CategoryPrivate)
	res.Crypto.Hash += cb.Elapsed(handshake.CategoryHash)
	res.Crypto.Other += cb.Elapsed(handshake.CategoryOther)

	res.SSLTotal = sslTimer.Elapsed() - (readWait() - waitStart)
	if res.SSLTotal < res.Crypto.Total() {
		// The observer windows can slightly exceed the outer timer
		// due to timer granularity; clamp.
		res.SSLTotal = res.Crypto.Total()
	}
	state, err := server.ConnectionState()
	if err != nil {
		return nil, nil, err
	}
	res.Resumed = state.Resumed

	sess, err := client.Session()
	if err != nil {
		return nil, nil, err
	}
	return res, sess, nil
}

// ErrNoTransactions is returned for an empty session.
var ErrNoTransactions = errors.New("webmodel: session has no transactions")
