package debughttp

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestWantText(t *testing.T) {
	cases := []struct {
		url    string
		accept string
		want   bool
	}{
		{"/x", "", false},
		{"/x?format=text", "", true},
		{"/x?format=json", "", false},
		{"/x?format=xml", "", false},          // unknown format -> JSON (pinned)
		{"/x?format=json", "text/plain", false}, // explicit format beats Accept
		{"/x", "text/plain", true},
		{"/x", "text/plain; q=0.9", true},
		{"/x", "application/json", false},
		{"/x", "application/json, text/plain", false}, // first listed wins
		{"/x", "text/plain, application/json", true},
		{"/x", "*/*", false},
	}
	for _, c := range cases {
		req := httptest.NewRequest("GET", c.url, nil)
		if c.accept != "" {
			req.Header.Set("Accept", c.accept)
		}
		if got := WantText(req); got != c.want {
			t.Errorf("WantText(%s, Accept=%q) = %v, want %v", c.url, c.accept, got, c.want)
		}
	}
}

func TestServeHeaders(t *testing.T) {
	text := func() string { return "hello\n" }
	jsonFn := func() ([]byte, error) { return []byte(`{"ok":true}`), nil }

	w := httptest.NewRecorder()
	Serve(w, httptest.NewRequest("GET", "/x", nil), text, jsonFn)
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("json content-type = %q", ct)
	}
	if cc := w.Header().Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("json cache-control = %q", cc)
	}

	w = httptest.NewRecorder()
	Serve(w, httptest.NewRequest("GET", "/x?format=text", nil), text, jsonFn)
	if ct := w.Header().Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Fatalf("text content-type = %q", ct)
	}
	if cc := w.Header().Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("text cache-control = %q", cc)
	}
	if w.Body.String() != "hello\n" {
		t.Fatalf("text body = %q", w.Body.String())
	}

	w = httptest.NewRecorder()
	Serve(w, httptest.NewRequest("GET", "/x", nil), text,
		func() ([]byte, error) { return nil, errors.New("boom") })
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("marshal error status = %d", w.Code)
	}
}

func TestPostOnly(t *testing.T) {
	w := httptest.NewRecorder()
	if PostOnly(w, httptest.NewRequest("GET", "/x/reset", nil)) {
		t.Fatal("GET passed PostOnly")
	}
	if w.Code != http.StatusMethodNotAllowed || w.Header().Get("Allow") != http.MethodPost {
		t.Fatalf("GET reset: status %d allow %q", w.Code, w.Header().Get("Allow"))
	}
	w = httptest.NewRecorder()
	if !PostOnly(w, httptest.NewRequest("POST", "/x/reset", nil)) {
		t.Fatal("POST rejected by PostOnly")
	}
}
