// Package debughttp is the one convention every /debug/* and /metrics
// endpoint speaks. Before it existed each handler hand-rolled its own
// Accept/?format= logic and none set cache headers; now content
// negotiation, the no-store discipline (a live observability snapshot
// must never be served stale by an intermediary), and the POST-only
// reset convention (405 + Allow on anything else) live in one place.
package debughttp

import (
	"net/http"
	"strings"
)

// WantText reports whether the request asked for the text rendering:
// either the explicit ?format=text query (which always wins, matching
// the convention every endpoint has documented since PR 1) or, when no
// format was named, an Accept header that prefers text/plain over
// JSON. Unknown ?format= values fall through to JSON, the pinned
// behavior of the content-negotiation tests.
func WantText(req *http.Request) bool {
	if f := req.URL.Query().Get("format"); f != "" {
		return f == "text"
	}
	accept := req.Header.Get("Accept")
	if accept == "" {
		return false
	}
	// First listed wins between the two types we can serve; a bare
	// text/plain (curl -H 'Accept: text/plain') selects text.
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(part)
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			mt = strings.TrimSpace(mt[:i])
		}
		switch mt {
		case "text/plain":
			return true
		case "application/json":
			return false
		}
	}
	return false
}

// noStore marks the response uncacheable: every /debug surface is a
// live snapshot and a cached copy is a wrong answer.
func noStore(w http.ResponseWriter) {
	w.Header().Set("Cache-Control", "no-store")
}

// HeadJSON sets the standard JSON headers without writing a body, for
// handlers that pick their own status code (health's 503).
func HeadJSON(w http.ResponseWriter) {
	noStore(w)
	w.Header().Set("Content-Type", "application/json")
}

// HeadText is HeadJSON for the text rendering.
func HeadText(w http.ResponseWriter) {
	noStore(w)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
}

// WriteJSON serves b as JSON with the standard headers.
func WriteJSON(w http.ResponseWriter, b []byte) {
	HeadJSON(w)
	w.Write(b)
}

// WriteText serves s as plain text with the standard headers.
func WriteText(w http.ResponseWriter, s string) {
	HeadText(w)
	w.Write([]byte(s))
}

// Serve renders one snapshot under the shared negotiation: textFn when
// the request wants text, jsonFn otherwise (500 on a marshal error).
func Serve(w http.ResponseWriter, req *http.Request, textFn func() string, jsonFn func() ([]byte, error)) {
	if WantText(req) {
		WriteText(w, textFn())
		return
	}
	b, err := jsonFn()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	WriteJSON(w, b)
}

// PostOnly guards a reset-style endpoint: true when the request is a
// POST, otherwise it writes the conventional 405 + Allow: POST and
// returns false.
func PostOnly(w http.ResponseWriter, req *http.Request) bool {
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	return true
}
