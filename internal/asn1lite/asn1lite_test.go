package asn1lite

import (
	"bytes"
	"encoding/asn1"
	"math/big"
	"testing"
	"testing/quick"
	"time"

	"sslperf/internal/bn"
)

func TestEncodeIntegerAgainstStdlib(t *testing.T) {
	f := func(v uint64) bool {
		got := EncodeInt(int64(v % (1 << 62)))
		want, err := asn1.Marshal(new(big.Int).SetUint64(v % (1 << 62)))
		if err != nil {
			return false
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeBigIntegerAgainstStdlib(t *testing.T) {
	f := func(raw []byte) bool {
		v := bn.New().SetBytes(raw)
		got := EncodeInteger(v)
		want, err := asn1.Marshal(new(big.Int).SetBytes(raw))
		if err != nil {
			return false
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeOIDAgainstStdlib(t *testing.T) {
	oids := [][]uint32{
		{1, 2, 840, 113549, 1, 1, 1},
		{1, 2, 840, 113549, 1, 1, 5},
		{2, 5, 4, 3},
		{1, 3, 6, 1, 4, 1, 11129},
	}
	for _, arcs := range oids {
		got := EncodeOID(arcs...)
		ints := make([]int, len(arcs))
		for i, a := range arcs {
			ints[i] = int(a)
		}
		want, err := asn1.Marshal(asn1.ObjectIdentifier(ints))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("OID %v: got %x, want %x", arcs, got, want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	der := EncodeSequence(
		EncodeInt(42),
		EncodeOctetString([]byte("payload")),
		EncodeBool(true),
		EncodeNull(),
	)
	v, rest, err := Parse(der)
	if err != nil || len(rest) != 0 {
		t.Fatalf("parse: %v, rest %d", err, len(rest))
	}
	if v.Tag != TagSequence || !v.Constructed() {
		t.Fatalf("tag = %#x", v.Tag)
	}
	kids, err := v.Children()
	if err != nil || len(kids) != 4 {
		t.Fatalf("children: %v, %d", err, len(kids))
	}
	n, err := kids[0].Integer()
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := n.Uint64(); got != 42 {
		t.Fatalf("integer = %d", got)
	}
	if kids[1].Tag != TagOctetString || string(kids[1].Content) != "payload" {
		t.Fatal("octet string wrong")
	}
}

func TestIntegerRoundTripProperty(t *testing.T) {
	f := func(raw []byte) bool {
		v := bn.New().SetBytes(raw)
		der := EncodeInteger(v)
		parsed, rest, err := Parse(der)
		if err != nil || len(rest) != 0 {
			return false
		}
		back, err := parsed.Integer()
		if err != nil {
			return false
		}
		return back.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOIDRoundTrip(t *testing.T) {
	arcs := []uint32{1, 2, 840, 113549, 1, 1, 5}
	der := EncodeOID(arcs...)
	v, _, err := Parse(der)
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.OID()
	if err != nil {
		t.Fatal(err)
	}
	if !OIDEqual(got, arcs) {
		t.Fatalf("OID = %v", got)
	}
	if OIDEqual(got, arcs[:6]) {
		t.Fatal("OIDEqual matched different lengths")
	}
}

func TestBitString(t *testing.T) {
	payload := []byte{0xde, 0xad}
	der := EncodeBitString(payload)
	v, _, err := Parse(der)
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.BitString()
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("BitString = %x, %v", got, err)
	}
}

func TestUTCTimeRoundTrip(t *testing.T) {
	ts := time.Date(2005, 3, 20, 12, 34, 56, 0, time.UTC)
	der := EncodeUTCTime(ts)
	v, _, err := Parse(der)
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.UTCTime()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ts) {
		t.Fatalf("UTCTime = %v, want %v", got, ts)
	}
}

func TestLongLengthEncoding(t *testing.T) {
	// Content > 127 bytes forces the long length form.
	big := make([]byte, 300)
	der := EncodeOctetString(big)
	v, rest, err := Parse(der)
	if err != nil || len(rest) != 0 {
		t.Fatalf("parse: %v", err)
	}
	if len(v.Content) != 300 {
		t.Fatalf("content = %d bytes", len(v.Content))
	}
	// Cross-check against stdlib.
	want, _ := asn1.Marshal(big)
	if !bytes.Equal(der, want) {
		t.Fatal("long form differs from stdlib")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := [][]byte{
		{},
		{0x30},                // no length
		{0x30, 0x05, 0x01},    // truncated content
		{0x30, 0x85, 1, 1, 1}, // absurd length-of-length
		{0x1f, 0x01, 0x00},    // multi-byte tag
		{0x30, 0x81, 0x05},    // non-minimal + truncated
	}
	for i, b := range bad {
		if _, _, err := Parse(b); err == nil {
			t.Errorf("malformed case %d accepted", i)
		}
	}
}

func TestTypeMismatchErrors(t *testing.T) {
	der := EncodeOctetString([]byte("x"))
	v, _, _ := Parse(der)
	if _, err := v.Integer(); err == nil {
		t.Error("Integer() on OCTET STRING succeeded")
	}
	if _, err := v.OID(); err == nil {
		t.Error("OID() on OCTET STRING succeeded")
	}
	if _, err := v.BitString(); err == nil {
		t.Error("BitString() on OCTET STRING succeeded")
	}
	if _, err := v.UTCTime(); err == nil {
		t.Error("UTCTime() on OCTET STRING succeeded")
	}
}

func TestExplicitTag(t *testing.T) {
	inner := EncodeInt(2)
	der := EncodeExplicit(0, inner)
	v, _, err := Parse(der)
	if err != nil {
		t.Fatal(err)
	}
	if v.Class() != 2 || !v.Constructed() {
		t.Fatalf("tag = %#x", v.Tag)
	}
	kids, err := v.Children()
	if err != nil || len(kids) != 1 {
		t.Fatal("explicit wrapper should hold one child")
	}
}
