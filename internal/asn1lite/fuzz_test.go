package asn1lite

import (
	"testing"
	"time"
)

// FuzzParse exercises the DER parser with arbitrary bytes; it must
// never panic, and anything it accepts must survive the accessors.
// (Runs as a seed-corpus test under plain `go test`; use
// `go test -fuzz=FuzzParse ./internal/asn1lite` to explore.)
func FuzzParse(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x30, 0x00})
	f.Add(EncodeSequence(EncodeInt(42), EncodeOctetString([]byte("x"))))
	f.Add(EncodeOID(1, 2, 840, 113549, 1, 1, 5))
	f.Add(EncodeBitString([]byte{0xde, 0xad}))
	f.Add(EncodeUTCTime(time.Date(2005, 3, 20, 1, 2, 3, 0, time.UTC)))
	f.Add([]byte{0x30, 0x84, 0xff, 0xff, 0xff, 0xff}) // absurd length
	f.Fuzz(func(t *testing.T, data []byte) {
		v, rest, err := Parse(data)
		if err != nil {
			return
		}
		if len(v.Raw)+len(rest) != len(data) {
			t.Fatalf("parse consumed wrong amount: %d + %d != %d",
				len(v.Raw), len(rest), len(data))
		}
		// Accessors must not panic regardless of tag.
		v.Children()
		v.Integer()
		v.OID()
		v.BitString()
		v.String()
		v.UTCTime()
		v.Constructed()
		v.Class()
	})
}
