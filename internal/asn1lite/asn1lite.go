// Package asn1lite implements the subset of ASN.1 DER encoding and
// decoding needed for X.509 certificates and PKCS#1 keys: the "X509
// functions" whose cost appears in step 3 of the paper's Table 2.
package asn1lite

import (
	"errors"
	"fmt"
	"time"

	"sslperf/internal/bn"
)

// Universal tag numbers used here.
const (
	TagBoolean         = 0x01
	TagInteger         = 0x02
	TagBitString       = 0x03
	TagOctetString     = 0x04
	TagNull            = 0x05
	TagOID             = 0x06
	TagUTF8String      = 0x0c
	TagSequence        = 0x30 // constructed
	TagSet             = 0x31 // constructed
	TagPrintableString = 0x13
	TagUTCTime         = 0x17
)

// encodeLength produces a DER length encoding.
func encodeLength(n int) []byte {
	if n < 0x80 {
		return []byte{byte(n)}
	}
	var tmp [8]byte
	i := len(tmp)
	for n > 0 {
		i--
		tmp[i] = byte(n)
		n >>= 8
	}
	out := make([]byte, 0, 1+len(tmp)-i)
	out = append(out, 0x80|byte(len(tmp)-i))
	return append(out, tmp[i:]...)
}

// EncodeTag wraps content in a TLV with the given tag byte.
func EncodeTag(tag byte, content []byte) []byte {
	out := make([]byte, 0, 2+len(content)+8)
	out = append(out, tag)
	out = append(out, encodeLength(len(content))...)
	return append(out, content...)
}

// EncodeSequence concatenates the elements into a SEQUENCE.
func EncodeSequence(elems ...[]byte) []byte {
	var body []byte
	for _, e := range elems {
		body = append(body, e...)
	}
	return EncodeTag(TagSequence, body)
}

// EncodeSet concatenates the elements into a SET.
func EncodeSet(elems ...[]byte) []byte {
	var body []byte
	for _, e := range elems {
		body = append(body, e...)
	}
	return EncodeTag(TagSet, body)
}

// EncodeExplicit wraps content in a context-specific constructed tag
// [n], as X.509 uses for version and extensions.
func EncodeExplicit(n int, content []byte) []byte {
	return EncodeTag(0xa0|byte(n), content)
}

// EncodeInteger encodes a non-negative big integer.
func EncodeInteger(v *bn.Int) []byte {
	b := v.Bytes()
	if len(b) == 0 {
		b = []byte{0}
	} else if b[0]&0x80 != 0 {
		b = append([]byte{0}, b...) // keep it positive
	}
	return EncodeTag(TagInteger, b)
}

// EncodeInt encodes a small non-negative integer.
func EncodeInt(v int64) []byte {
	if v < 0 {
		panic("asn1lite: negative integers unsupported")
	}
	return EncodeInteger(bn.NewInt(uint64(v)))
}

// EncodeOID encodes an object identifier from its arcs.
func EncodeOID(arcs ...uint32) []byte {
	if len(arcs) < 2 {
		panic("asn1lite: OID needs at least two arcs")
	}
	body := []byte{byte(arcs[0]*40 + arcs[1])}
	for _, arc := range arcs[2:] {
		body = append(body, encodeBase128(arc)...)
	}
	return EncodeTag(TagOID, body)
}

func encodeBase128(v uint32) []byte {
	var tmp [5]byte
	i := len(tmp) - 1
	tmp[i] = byte(v & 0x7f)
	v >>= 7
	for v > 0 {
		i--
		tmp[i] = byte(v&0x7f) | 0x80
		v >>= 7
	}
	return tmp[i:]
}

// EncodeBitString encodes b as a BIT STRING with no unused bits.
func EncodeBitString(b []byte) []byte {
	return EncodeTag(TagBitString, append([]byte{0}, b...))
}

// EncodeOctetString encodes b as an OCTET STRING.
func EncodeOctetString(b []byte) []byte { return EncodeTag(TagOctetString, b) }

// EncodeNull encodes NULL.
func EncodeNull() []byte { return []byte{TagNull, 0} }

// EncodeBool encodes a BOOLEAN.
func EncodeBool(v bool) []byte {
	b := byte(0)
	if v {
		b = 0xff
	}
	return EncodeTag(TagBoolean, []byte{b})
}

// EncodePrintableString encodes s.
func EncodePrintableString(s string) []byte {
	return EncodeTag(TagPrintableString, []byte(s))
}

// EncodeUTCTime encodes t in the YYMMDDHHMMSSZ form X.509 v1 uses.
func EncodeUTCTime(t time.Time) []byte {
	u := t.UTC()
	s := fmt.Sprintf("%02d%02d%02d%02d%02d%02dZ",
		u.Year()%100, int(u.Month()), u.Day(), u.Hour(), u.Minute(), u.Second())
	return EncodeTag(TagUTCTime, []byte(s))
}

// A Value is one parsed TLV.
type Value struct {
	Tag     byte
	Content []byte
	Raw     []byte // full TLV bytes
}

// Constructed reports whether the constructed bit is set.
func (v Value) Constructed() bool { return v.Tag&0x20 != 0 }

// Class returns the tag class bits (0 = universal, 2 = context).
func (v Value) Class() int { return int(v.Tag >> 6) }

// Parse reads one TLV from der, returning the value and the remaining
// bytes.
func Parse(der []byte) (Value, []byte, error) {
	if len(der) < 2 {
		return Value{}, nil, errors.New("asn1lite: truncated TLV")
	}
	tag := der[0]
	if tag&0x1f == 0x1f {
		return Value{}, nil, errors.New("asn1lite: multi-byte tags unsupported")
	}
	lenByte := der[1]
	var length, hdr int
	if lenByte < 0x80 {
		length = int(lenByte)
		hdr = 2
	} else {
		n := int(lenByte & 0x7f)
		if n == 0 || n > 4 || len(der) < 2+n {
			return Value{}, nil, errors.New("asn1lite: bad length encoding")
		}
		for i := 0; i < n; i++ {
			length = length<<8 | int(der[2+i])
		}
		if length < 0x80 && n > 0 {
			return Value{}, nil, errors.New("asn1lite: non-minimal length")
		}
		hdr = 2 + n
	}
	if len(der) < hdr+length {
		return Value{}, nil, errors.New("asn1lite: content truncated")
	}
	return Value{
		Tag:     tag,
		Content: der[hdr : hdr+length],
		Raw:     der[:hdr+length],
	}, der[hdr+length:], nil
}

// Children parses the value's content as a list of TLVs (for
// SEQUENCE/SET or any constructed value).
func (v Value) Children() ([]Value, error) {
	var out []Value
	rest := v.Content
	for len(rest) > 0 {
		child, r, err := Parse(rest)
		if err != nil {
			return nil, err
		}
		out = append(out, child)
		rest = r
	}
	return out, nil
}

// Integer interprets the value as a non-negative INTEGER.
func (v Value) Integer() (*bn.Int, error) {
	if v.Tag != TagInteger {
		return nil, fmt.Errorf("asn1lite: tag %#x is not INTEGER", v.Tag)
	}
	if len(v.Content) == 0 {
		return nil, errors.New("asn1lite: empty INTEGER")
	}
	if v.Content[0]&0x80 != 0 {
		return nil, errors.New("asn1lite: negative INTEGER unsupported")
	}
	return bn.New().SetBytes(v.Content), nil
}

// BitString returns the BIT STRING payload, requiring zero unused bits.
func (v Value) BitString() ([]byte, error) {
	if v.Tag != TagBitString {
		return nil, fmt.Errorf("asn1lite: tag %#x is not BIT STRING", v.Tag)
	}
	if len(v.Content) == 0 || v.Content[0] != 0 {
		return nil, errors.New("asn1lite: unsupported BIT STRING padding")
	}
	return v.Content[1:], nil
}

// OID returns the object identifier arcs.
func (v Value) OID() ([]uint32, error) {
	if v.Tag != TagOID {
		return nil, fmt.Errorf("asn1lite: tag %#x is not OID", v.Tag)
	}
	if len(v.Content) == 0 {
		return nil, errors.New("asn1lite: empty OID")
	}
	out := []uint32{uint32(v.Content[0]) / 40, uint32(v.Content[0]) % 40}
	var cur uint32
	for _, b := range v.Content[1:] {
		cur = cur<<7 | uint32(b&0x7f)
		if b&0x80 == 0 {
			out = append(out, cur)
			cur = 0
		}
	}
	return out, nil
}

// String interprets PrintableString/UTF8String content.
func (v Value) String() (string, error) {
	if v.Tag != TagPrintableString && v.Tag != TagUTF8String {
		return "", fmt.Errorf("asn1lite: tag %#x is not a string", v.Tag)
	}
	return string(v.Content), nil
}

// UTCTime parses a YYMMDDHHMMSSZ timestamp.
func (v Value) UTCTime() (time.Time, error) {
	if v.Tag != TagUTCTime {
		return time.Time{}, fmt.Errorf("asn1lite: tag %#x is not UTCTime", v.Tag)
	}
	t, err := time.Parse("060102150405Z", string(v.Content))
	if err != nil {
		return time.Time{}, err
	}
	return t, nil
}

// OIDEqual compares two arc lists.
func OIDEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
