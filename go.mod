module sslperf

go 1.22
