// Benchmarks regenerating the measured quantity behind every table
// and figure of the paper. Run with:
//
//	go test -bench=. -benchmem
//
// Benchmark names carry the table/figure they correspond to; the
// rendered tables themselves come from `sslanatomy -experiment all`.
package sslperf_test

import (
	"sync"
	"testing"
	"time"

	"sslperf"
	"sslperf/internal/accel"
	"sslperf/internal/aes"
	"sslperf/internal/bn"
	"sslperf/internal/core"
	"sslperf/internal/des"
	"sslperf/internal/md5x"
	"sslperf/internal/perf"
	"sslperf/internal/rc4"
	"sslperf/internal/rsa"
	"sslperf/internal/sha1x"
	"sslperf/internal/sslcrypto"
	"sslperf/internal/webmodel"
	"sslperf/internal/workload"
)

var (
	benchOnce sync.Once
	benchID   *sslperf.Identity
	benchRSA  map[int]*rsa.PrivateKey
)

func benchSetup(b *testing.B) (*sslperf.Identity, map[int]*rsa.PrivateKey) {
	b.Helper()
	benchOnce.Do(func() {
		var err error
		benchID, err = sslperf.NewIdentity(sslperf.NewPRNG(1), 1024, "bench", time.Now())
		if err != nil {
			panic(err)
		}
		benchRSA = map[int]*rsa.PrivateKey{1024: benchID.Key}
		k512, err := rsa.GenerateKey(sslperf.NewPRNG(2), 512)
		if err != nil {
			panic(err)
		}
		benchRSA[512] = k512
	})
	return benchID, benchRSA
}

func benchServer(b *testing.B) *webmodel.Server {
	id, _ := benchSetup(b)
	s, err := sslperf.SuiteByName("DES-CBC3-SHA")
	if err != nil {
		b.Fatal(err)
	}
	return webmodel.NewServer(id, s)
}

// --- Figure 1 / Tables 1-3: protocol-level measurements ---

func BenchmarkFigure1HandshakeTrace(b *testing.B) {
	id, _ := benchSetup(b)
	_ = id
	e, err := core.ByID("fig1")
	if err != nil {
		b.Fatal(err)
	}
	cfg := &core.Config{Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Transaction1KB(b *testing.B) {
	srv := benchServer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := srv.RunTransaction(1024, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2TransactionBySize(b *testing.B) {
	for _, size := range workload.FileSweep() {
		b.Run(byteName(size), func(b *testing.B) {
			srv := benchServer(b)
			b.SetBytes(int64(size))
			b.ResetTimer()
			var agg webmodel.CryptoSplit
			for i := 0; i < b.N; i++ {
				res, _, err := srv.RunTransaction(size, nil)
				if err != nil {
					b.Fatal(err)
				}
				agg.Add(res.Crypto)
			}
			if total := float64(agg.Total()); total > 0 {
				b.ReportMetric(100*float64(agg.Public)/total, "public%")
				b.ReportMetric(100*float64(agg.Private)/total, "private%")
				b.ReportMetric(100*float64(agg.Hash)/total, "hash%")
			}
		})
	}
}

func BenchmarkTable2FullHandshake(b *testing.B) {
	srv := benchServer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := srv.RunTransaction(64, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2ResumedHandshake(b *testing.B) {
	srv := benchServer(b)
	_, sess, err := srv.RunTransaction(64, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, s2, err := srv.RunTransaction(64, sess)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Resumed {
			b.Fatal("did not resume")
		}
		sess = s2
	}
}

func BenchmarkTable3HandshakeCrypto(b *testing.B) {
	srv := benchServer(b)
	b.ResetTimer()
	var public time.Duration
	for i := 0; i < b.N; i++ {
		res, _, err := srv.RunTransaction(64, nil)
		if err != nil {
			b.Fatal(err)
		}
		public += res.Crypto.Public
	}
	b.ReportMetric(float64(public.Nanoseconds())/float64(b.N), "rsa-ns/op")
}

// --- Figure 3 / Tables 4-6: symmetric ciphers ---

func BenchmarkFigure3KeySetup(b *testing.B) {
	b.Run("AES", func(b *testing.B) {
		key := workload.Payload(16)
		for i := 0; i < b.N; i++ {
			aes.New(key)
		}
	})
	b.Run("DES", func(b *testing.B) {
		key := workload.Payload(8)
		for i := 0; i < b.N; i++ {
			des.New(key)
		}
	})
	b.Run("3DES", func(b *testing.B) {
		key := workload.Payload(24)
		for i := 0; i < b.N; i++ {
			des.NewTriple(key)
		}
	})
	b.Run("RC4", func(b *testing.B) {
		key := workload.Payload(16)
		for i := 0; i < b.N; i++ {
			rc4.New(key)
		}
	})
}

func BenchmarkTable4Characteristics(b *testing.B) {
	// Table 4 is static metadata; the benchmark pins its accessors.
	for i := 0; i < b.N; i++ {
		_ = aes.Characteristics()
		_ = des.Characteristics()
		_ = des.TripleCharacteristics()
		_ = rc4.Characteristics()
	}
}

func BenchmarkTable5AESBlock(b *testing.B) {
	for _, keyLen := range []int{16, 32} {
		b.Run(byteName(keyLen*8), func(b *testing.B) {
			c, _ := aes.New(make([]byte, keyLen))
			src := workload.Payload(16)
			dst := make([]byte, 16)
			b.SetBytes(16)
			for i := 0; i < b.N; i++ {
				c.Encrypt(dst, src)
			}
		})
	}
}

func BenchmarkTable6DESBlock(b *testing.B) {
	b.Run("DES", func(b *testing.B) {
		c, _ := des.New(make([]byte, 8))
		src := workload.Payload(8)
		dst := make([]byte, 8)
		b.SetBytes(8)
		for i := 0; i < b.N; i++ {
			c.Encrypt(dst, src)
		}
	})
	b.Run("3DES", func(b *testing.B) {
		c, _ := des.NewTriple(make([]byte, 24))
		src := workload.Payload(8)
		dst := make([]byte, 8)
		b.SetBytes(8)
		for i := 0; i < b.N; i++ {
			c.Encrypt(dst, src)
		}
	})
}

// --- Tables 7-9: RSA ---

func BenchmarkTable7RSADecrypt(b *testing.B) {
	_, keys := benchSetup(b)
	for _, bits := range []int{512, 1024} {
		b.Run(byteName(bits), func(b *testing.B) {
			key := keys[bits]
			rnd := sslperf.NewPRNG(3)
			msg := make([]byte, 48)
			ct, err := key.EncryptPKCS1(rnd, msg)
			if err != nil {
				b.Fatal(err)
			}
			key.DecryptPKCS1(rnd, ct) // warm blinding
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := key.DecryptPKCS1(rnd, ct); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable8RSADecryptProfiled(b *testing.B) {
	_, keys := benchSetup(b)
	key := keys[1024]
	rnd := sslperf.NewPRNG(4)
	ct, err := key.EncryptPKCS1(rnd, make([]byte, 48))
	if err != nil {
		b.Fatal(err)
	}
	key.DecryptPKCS1(rnd, ct)
	prof := perf.NewBreakdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := key.DecryptPKCS1Profiled(rnd, ct, prof); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable9MulAddKernel(b *testing.B) {
	// The bn_mul_add_words inner loop, exercised through a 1024-bit
	// schoolbook multiplication (32 limb passes of 32 limbs).
	x := bn.New()
	x.Rand(sslperf.NewPRNG(5), 1024, false)
	y := bn.New()
	y.Rand(sslperf.NewPRNG(6), 1024, false)
	z := bn.New()
	b.SetBytes(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Mul(x, y)
	}
}

// --- Tables 10-12: hashes and architecture ---

func BenchmarkTable10Hash1KB(b *testing.B) {
	data := workload.Payload(1024)
	b.Run("MD5", func(b *testing.B) {
		b.SetBytes(1024)
		for i := 0; i < b.N; i++ {
			md5x.Sum16(data)
		}
	})
	b.Run("SHA1", func(b *testing.B) {
		b.SetBytes(1024)
		for i := 0; i < b.N; i++ {
			sha1x.Sum20(data)
		}
	})
}

func BenchmarkTable11Throughput(b *testing.B) {
	data := workload.Payload(1024)
	b.Run("AES", func(b *testing.B) {
		c, _ := aes.New(make([]byte, 16))
		dst := make([]byte, 16)
		b.SetBytes(1024)
		for i := 0; i < b.N; i++ {
			for j := 0; j+16 <= len(data); j += 16 {
				c.Encrypt(dst, data[j:j+16])
			}
		}
	})
	b.Run("DES", func(b *testing.B) {
		c, _ := des.New(make([]byte, 8))
		dst := make([]byte, 8)
		b.SetBytes(1024)
		for i := 0; i < b.N; i++ {
			for j := 0; j+8 <= len(data); j += 8 {
				c.Encrypt(dst, data[j:j+8])
			}
		}
	})
	b.Run("3DES", func(b *testing.B) {
		c, _ := des.NewTriple(make([]byte, 24))
		dst := make([]byte, 8)
		b.SetBytes(1024)
		for i := 0; i < b.N; i++ {
			for j := 0; j+8 <= len(data); j += 8 {
				c.Encrypt(dst, data[j:j+8])
			}
		}
	})
	b.Run("RC4", func(b *testing.B) {
		c, _ := rc4.New(make([]byte, 16))
		buf := make([]byte, 1024)
		b.SetBytes(1024)
		for i := 0; i < b.N; i++ {
			c.XORKeyStream(buf, data)
		}
	})
	b.Run("MD5", func(b *testing.B) {
		b.SetBytes(1024)
		for i := 0; i < b.N; i++ {
			md5x.Sum16(data)
		}
	})
	b.Run("SHA1", func(b *testing.B) {
		b.SetBytes(1024)
		for i := 0; i < b.N; i++ {
			sha1x.Sum20(data)
		}
	})
	b.Run("RSA", func(b *testing.B) {
		_, keys := benchSetup(b)
		key := keys[1024]
		rnd := sslperf.NewPRNG(7)
		ct, _ := key.EncryptPKCS1(rnd, make([]byte, 48))
		key.DecryptPKCS1(rnd, ct)
		b.SetBytes(int64(key.Size()))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			key.DecryptPKCS1(rnd, ct)
		}
	})
}

func BenchmarkTable12TraceGeneration(b *testing.B) {
	c, _ := aes.New(make([]byte, 16))
	var tr perf.Trace
	for i := 0; i < b.N; i++ {
		tr.Reset()
		c.TraceEncryptBlock(&tr)
		_ = tr.Mix()
	}
}

// --- Figures 4-6: optimization models ---

func BenchmarkFigure4ThreeOperandISA(b *testing.B) {
	var tr perf.Trace
	md5x.TraceHash(&tr, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		after := accel.ThreeOperandISA(&tr)
		_ = accel.Speedup(&tr, after)
	}
}

func BenchmarkFigure5AESRoundUnit(b *testing.B) {
	c, _ := aes.New(make([]byte, 16))
	var tr perf.Trace
	c.TraceEncryptBlock(&tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		accel.AESRoundUnit(&tr, c.Rounds())
	}
}

func BenchmarkFigure6Engine(b *testing.B) {
	data := workload.Payload(16384)
	mk := func(b *testing.B) *accel.Engine {
		e, err := accel.NewEngine(make([]byte, 16), make([]byte, 16),
			workload.Payload(20), sslcrypto.MACSHA1)
		if err != nil {
			b.Fatal(err)
		}
		return e
	}
	b.Run("Serial", func(b *testing.B) {
		e := mk(b)
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := e.EncryptFragmentSerial(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Pipelined", func(b *testing.B) {
		e := mk(b)
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := e.EncryptFragmentPipelined(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func byteName(n int) string {
	switch {
	case n >= 1024 && n%1024 == 0:
		return itoa(n/1024) + "KB"
	default:
		return itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
