// Banking: the paper's "banking transactions" archetype — many short
// sessions exchanging small amounts of data, where session
// negotiation dominates total cost. The example runs the same
// workload twice, without and with session resumption, and shows the
// handshake-avoidance win the paper attributes to re-negotiation
// ("session re-negotiation using the previously setup keys can avoid
// the public key encryption").
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"sslperf/internal/handshake"
	"sslperf/internal/ssl"
	"sslperf/internal/suite"
	"sslperf/internal/webmodel"
	"sslperf/internal/workload"
)

func main() {
	var (
		sessions = flag.Int("sessions", 50, "number of banking sessions")
	)
	flag.Parse()

	id, err := ssl.NewIdentity(ssl.NewPRNG(20), 1024, "bank.example", time.Now())
	if err != nil {
		log.Fatal(err)
	}
	s, _ := suite.ByName("DES-CBC3-SHA")

	run := func(resumeRatio float64) (time.Duration, time.Duration, int) {
		srv := webmodel.NewServer(id, s)
		pattern := workload.Banking(*sessions, resumeRatio)
		var sslTime, rsaTime time.Duration
		resumed := 0
		var prev *handshake.Session
		for _, sess := range pattern.Sessions {
			var resume *handshake.Session
			if sess.Resume {
				resume = prev
			}
			res, newSess, err := srv.RunSession(sess.Transactions, resume)
			if err != nil {
				log.Fatal(err)
			}
			if res.Resumed {
				resumed++
			}
			sslTime += res.SSLTotal
			rsaTime += res.Crypto.Public
			prev = newSess
		}
		return sslTime, rsaTime, resumed
	}

	noResume, rsaNo, _ := run(0)
	withResume, rsaYes, resumed := run(0.9)

	fmt.Printf("banking workload: %d sessions of 2 small transactions each\n\n", *sessions)
	fmt.Printf("%-22s %12s %12s %10s\n", "", "SSL time", "RSA time", "resumed")
	fmt.Printf("%-22s %12v %12v %10d\n", "full handshakes", noResume, rsaNo, 0)
	fmt.Printf("%-22s %12v %12v %10d\n", "90% resumption", withResume, rsaYes, resumed)
	fmt.Printf("\nSSL time saved by resumption: %.1f%%\n",
		100*(1-float64(withResume)/float64(noResume)))
	fmt.Printf("RSA time saved:               %.1f%%\n",
		100*(1-float64(rsaYes)/float64(rsaNo)))
}
