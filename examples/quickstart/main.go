// Quickstart: an SSL client and server talking over an in-memory
// pipe — the minimal end-to-end use of the library. It generates a
// server identity, performs the SSLv3 handshake with the paper's
// DES-CBC3-SHA suite, exchanges a message, and prints what was
// negotiated.
package main

import (
	"fmt"
	"io"
	"log"
	"time"

	"sslperf/internal/ssl"
	"sslperf/internal/suite"
)

func main() {
	// A server needs an RSA key and a self-signed certificate.
	id, err := ssl.NewIdentity(ssl.NewPRNG(1), 1024, "quickstart.example", time.Now())
	if err != nil {
		log.Fatal(err)
	}

	// The in-memory pipe is the paper's "standalone ssltest" setup:
	// no sockets, no kernel — pure SSL processing.
	clientEnd, serverEnd := ssl.Pipe()

	s, err := suite.ByName("DES-CBC3-SHA")
	if err != nil {
		log.Fatal(err)
	}
	client := ssl.ClientConn(clientEnd, &ssl.Config{
		Rand:       ssl.NewPRNG(2),
		Suites:     []suite.ID{s.ID},
		ServerName: "quickstart.example",
	})
	server := ssl.ServerConn(serverEnd, id.ServerConfig(ssl.NewPRNG(3)))

	// Serve one echo in the background.
	go func() {
		defer server.Close()
		buf := make([]byte, 64)
		n, err := server.Read(buf)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := server.Write(buf[:n]); err != nil {
			log.Fatal(err)
		}
	}()

	start := time.Now()
	if err := client.Handshake(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("handshake completed in %v\n", time.Since(start))

	state, _ := client.ConnectionState()
	fmt.Printf("cipher suite: %s (resumed=%v)\n", state.Suite.Name, state.Resumed)

	msg := []byte("hello over SSLv3")
	if _, err := client.Write(msg); err != nil {
		log.Fatal(err)
	}
	echo := make([]byte, len(msg))
	if _, err := io.ReadFull(client, echo); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("echoed: %q\n", echo)
	client.Close()
}
