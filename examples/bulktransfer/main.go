// Bulktransfer: the paper's B2B archetype — one long session moving
// megabytes, where bulk encryption dominates and cipher choice
// matters. The example streams the same payload through every cipher
// suite and reports throughput, reproducing the ordering of the
// paper's Table 11 (RC4 fastest, 3DES slowest) on the full record
// stack rather than on bare primitives.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"time"

	"sslperf/internal/ssl"
	"sslperf/internal/suite"
	"sslperf/internal/workload"
)

func main() {
	var (
		size = flag.Int("size", 8<<20, "bytes per suite")
	)
	flag.Parse()

	id, err := ssl.NewIdentity(ssl.NewPRNG(30), 1024, "b2b.example", time.Now())
	if err != nil {
		log.Fatal(err)
	}
	payload := workload.Payload(*size)

	fmt.Printf("bulk transfer of %d MB per suite (record layer, in-memory transport)\n\n",
		*size>>20)
	fmt.Printf("%-14s %10s\n", "suite", "MB/s")
	for _, s := range suite.All() {
		mbps, err := measure(id, s, payload)
		if err != nil {
			log.Fatalf("%s: %v", s.Name, err)
		}
		fmt.Printf("%-14s %10.1f\n", s.Name, mbps)
	}
}

func measure(id *ssl.Identity, s *suite.Suite, payload []byte) (float64, error) {
	ct, st := ssl.Pipe()
	client := ssl.ClientConn(ct, &ssl.Config{
		Rand:               ssl.NewPRNG(31),
		Suites:             []suite.ID{s.ID},
		InsecureSkipVerify: true,
	})
	server := ssl.ServerConn(st, id.ServerConfig(ssl.NewPRNG(32)))

	errc := make(chan error, 1)
	go func() {
		defer client.Close()
		_, err := client.Write(payload)
		errc <- err
	}()
	if err := server.Handshake(); err != nil {
		return 0, err
	}
	start := time.Now()
	n, err := io.Copy(io.Discard, io.LimitReader(server, int64(len(payload))))
	if err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	if err := <-errc; err != nil {
		return 0, err
	}
	server.Close()
	return float64(n) / elapsed.Seconds() / 1e6, nil
}
