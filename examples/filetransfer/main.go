// Filetransfer: a secure file copy over TCP on localhost. The sender
// listens, the receiver connects, and an arbitrary amount of data
// flows through the SSLv3 record layer with integrity checking —
// exercising fragmentation (16 KB records), CBC chaining across
// records, and MAC verification on every fragment.
//
// Run with no arguments for a self-contained demo that transfers a
// generated 4 MB file through the loopback interface and verifies it.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"time"

	"sslperf/internal/sha1x"
	"sslperf/internal/ssl"
	"sslperf/internal/suite"
	"sslperf/internal/workload"
)

func main() {
	var (
		size      = flag.Int("size", 4<<20, "bytes to transfer")
		suiteName = flag.String("suite", "AES128-SHA", "cipher suite")
	)
	flag.Parse()

	s, err := suite.ByName(*suiteName)
	if err != nil {
		log.Fatal(err)
	}
	id, err := ssl.NewIdentity(ssl.NewPRNG(10), 1024, "filetransfer.example", time.Now())
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()

	file := workload.Payload(*size)
	wantDigest := sha1x.Sum20(file)

	// Sender.
	go func() {
		tc, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		conn := ssl.ServerConn(tc, id.ServerConfig(ssl.NewPRNG(11)))
		defer conn.Close()
		if _, err := conn.Write(file); err != nil {
			log.Fatal(err)
		}
	}()

	// Receiver.
	tc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	conn := ssl.ClientConn(tc, &ssl.Config{
		Rand:               ssl.NewPRNG(12),
		Suites:             []suite.ID{s.ID},
		InsecureSkipVerify: true,
	})
	defer conn.Close()

	start := time.Now()
	got, err := io.ReadAll(io.LimitReader(conn, int64(*size)))
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	gotDigest := sha1x.Sum20(got)
	if !bytes.Equal(gotDigest[:], wantDigest[:]) {
		log.Fatalf("transfer corrupted: digest mismatch")
	}
	state, _ := conn.ConnectionState()
	fmt.Printf("transferred %d bytes over %s in %v (%.1f MB/s)\n",
		len(got), state.Suite.Name, elapsed,
		float64(len(got))/elapsed.Seconds()/1e6)
	fmt.Printf("records read: %d, SHA-1 verified: %x...\n",
		conn.Stats().RecordsRead, gotDigest[:8])
}
