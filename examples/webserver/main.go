// Webserver: a miniature HTTPS server — the Apache + mod_ssl analogue
// of the paper's measurement setup. It serves HTTP/1.0 responses over
// this library's SSL stack on a loopback TCP socket and, run without
// flags, drives a few requests against itself (one full handshake,
// then resumed sessions) and prints per-request timings.
//
// Run with -listen to keep serving (e.g. for sslclient or curl-era
// browsers that still speak SSLv3/TLS1.0 — none survive, which is
// rather the point of studying 2005 in a simulator).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"strings"
	"time"

	"sslperf/internal/handshake"
	"sslperf/internal/record"
	"sslperf/internal/ssl"
	"sslperf/internal/workload"
)

var pages = map[string]int{
	"/":          1 << 10, // the paper's 1KB page
	"/small":     512,
	"/medium":    8 << 10,
	"/large":     32 << 10, // the paper's crossover point
	"/b2b-order": 256 << 10,
}

func main() {
	var (
		listen = flag.Bool("listen", false, "keep serving instead of running the demo")
		addr   = flag.String("addr", "127.0.0.1:0", "listen address")
		useTLS = flag.Bool("tls", false, "speak TLS 1.0 instead of SSL 3.0")
	)
	flag.Parse()

	id, err := ssl.NewIdentity(ssl.NewPRNG(7), 1024, "webserver.example", time.Now())
	if err != nil {
		log.Fatal(err)
	}
	cfg := id.ServerConfig(ssl.NewPRNG(8))
	cfg.SessionCache = handshake.NewSessionCache(1024)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	log.Printf("https-ish server on %s", ln.Addr())

	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go serve(ssl.ServerConn(conn, cfg))
		}
	}()

	if *listen {
		select {} // serve forever
	}

	// Demo client: one fresh session, then resumed ones.
	clientVersion := uint16(record.VersionSSL30)
	if *useTLS {
		clientVersion = record.VersionTLS10
	}
	var session *handshake.Session
	for i, path := range []string{"/", "/", "/medium", "/large"} {
		start := time.Now()
		n, sess, resumed, err := fetch(ln.Addr().String(), path, clientVersion, session)
		if err != nil {
			log.Fatalf("GET %s: %v", path, err)
		}
		session = sess
		fmt.Printf("GET %-8s -> %6d bytes in %8v (resumed=%v)\n",
			path, n, time.Since(start).Round(time.Microsecond), resumed)
		if i == 0 && resumed {
			log.Fatal("first request cannot be resumed")
		}
	}
}

// serve handles one connection: parse minimal HTTP/1.0 GETs, answer
// with deterministic payloads.
func serve(conn *ssl.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || fields[0] != "GET" {
			fmt.Fprintf(conn, "HTTP/1.0 400 Bad Request\r\n\r\n")
			return
		}
		// Swallow remaining headers.
		for {
			h, err := r.ReadString('\n')
			if err != nil || h == "\r\n" || h == "\n" {
				break
			}
		}
		size, ok := pages[fields[1]]
		if !ok {
			fmt.Fprintf(conn, "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n\r\n")
			continue
		}
		body := workload.Payload(size)
		fmt.Fprintf(conn, "HTTP/1.0 200 OK\r\nContent-Length: %d\r\n\r\n", len(body))
		if _, err := conn.Write(body); err != nil {
			return
		}
	}
}

// fetch performs one HTTPS GET, optionally resuming a session.
func fetch(addr, path string, version uint16, sess *handshake.Session) (int, *handshake.Session, bool, error) {
	tc, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, nil, false, err
	}
	conn := ssl.ClientConn(tc, &ssl.Config{
		Rand:       ssl.NewPRNG(uint64(time.Now().UnixNano())),
		ServerName: "webserver.example",
		Version:    version,
		Session:    sess,
	})
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "GET %s HTTP/1.0\r\n\r\n", path); err != nil {
		return 0, nil, false, err
	}
	r := bufio.NewReader(conn)
	status, err := r.ReadString('\n')
	if err != nil {
		return 0, nil, false, err
	}
	if !strings.Contains(status, "200") {
		return 0, nil, false, fmt.Errorf("status %q", strings.TrimSpace(status))
	}
	contentLen := 0
	for {
		h, err := r.ReadString('\n')
		if err != nil {
			return 0, nil, false, err
		}
		if h == "\r\n" || h == "\n" {
			break
		}
		if strings.HasPrefix(h, "Content-Length: ") {
			fmt.Sscanf(h, "Content-Length: %d", &contentLen)
		}
	}
	buf := make([]byte, contentLen)
	n := 0
	for n < contentLen {
		m, err := r.Read(buf[n:])
		if err != nil {
			return n, nil, false, err
		}
		n += m
	}
	state, err := conn.ConnectionState()
	if err != nil {
		return n, nil, false, err
	}
	newSess, err := conn.Session()
	if err != nil {
		return n, nil, false, err
	}
	return n, newSess, state.Resumed, nil
}
