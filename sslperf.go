// Package sslperf reproduces "Anatomy and Performance of SSL
// Processing" (Zhao, Iyer, Makineni, Bhuyan — ISPASS 2005) as a
// from-scratch Go library: a complete SSL 3.0 stack (multi-precision
// arithmetic, RSA, AES, DES/3DES, RC4, MD5, SHA-1, X.509, record
// layer, handshake) plus the measurement harness that regenerates
// every table and figure in the paper's evaluation.
//
// This top-level package is the public facade. The important entry
// points:
//
//   - Pipe, ClientConn, ServerConn, Config — SSL connections over any
//     transport (Pipe is the paper's in-memory "ssltest" setup).
//   - NonBlockingClient, NonBlockingServer — the sans-IO form of the
//     same connections, driven by Feed/HandshakeStep/Outgoing with
//     ErrWouldBlock suspension (what `sslserver -eventloop` parks
//     thousands of idle connections on without goroutine stacks).
//   - NewIdentity — server key + self-signed certificate.
//   - SuiteByName — the cipher suites ("DES-CBC3-SHA" is the paper's).
//   - Experiments / ExperimentByID — the Table/Figure reproductions.
//   - NewAnatomy — per-step handshake instrumentation (Table 2).
//
// It is a performance-study artifact, not a secure transport: SSLv3
// is obsolete and the default randomness is a seedable PRNG.
package sslperf

import (
	"io"

	"sslperf/internal/core"
	"sslperf/internal/handshake"
	"sslperf/internal/ssl"
	"sslperf/internal/suite"
)

// Connection API (see internal/ssl for details).
type (
	// Config carries client and server connection parameters.
	Config = ssl.Config
	// Conn is one end of an SSL connection.
	Conn = ssl.Conn
	// Identity is a server key pair plus self-signed certificate.
	Identity = ssl.Identity
	// PRNG is the deterministic randomness source experiments use.
	PRNG = ssl.PRNG
)

// Handshake and session types.
type (
	// Session is resumable session state.
	Session = handshake.Session
	// SessionCache stores server-side resumable sessions.
	SessionCache = handshake.SessionCache
	// Anatomy records the Table 2 per-step handshake breakdown.
	Anatomy = handshake.Anatomy
)

// Cipher-suite types.
type (
	// Suite describes one cipher suite.
	Suite = suite.Suite
	// SuiteID is a suite's wire identifier.
	SuiteID = suite.ID
)

// Experiment types (the paper-reproduction harness).
type (
	// Experiment regenerates one paper table or figure.
	Experiment = core.Experiment
	// ExperimentConfig controls experiment scale and seeding.
	ExperimentConfig = core.Config
	// Report is a rendered experiment result.
	Report = core.Report
)

// Pipe returns two ends of an in-memory duplex transport, the
// paper's standalone measurement setup.
func Pipe() (io.ReadWriteCloser, io.ReadWriteCloser) { return ssl.Pipe() }

// Listener accepts SSL server connections (the tls.Listen analogue).
type Listener = ssl.Listener

// Listen announces on a network address and wraps accepted
// connections as SSL servers.
func Listen(network, addr string, cfg *Config) (*Listener, error) {
	return ssl.Listen(network, addr, cfg)
}

// Dial connects, handshakes as a client, and returns the connection.
func Dial(network, addr string, cfg *Config) (*Conn, error) {
	return ssl.Dial(network, addr, cfg)
}

// NewPRNG returns a deterministic randomness source.
func NewPRNG(seed uint64) *PRNG { return ssl.NewPRNG(seed) }

// NonBlockingConn is a sans-IO SSL connection: no transport, no
// goroutines. Wire bytes go in through Feed, sealed bytes come out
// through Outgoing/ConsumeOutgoing, and HandshakeStep/ReadData
// return ErrWouldBlock instead of blocking when they need more input.
type NonBlockingConn = ssl.NonBlockingConn

// ErrWouldBlock is the sans-IO suspension sentinel: the call made all
// the progress the fed bytes allow — feed more and call again.
var ErrWouldBlock = ssl.ErrWouldBlock

// NonBlockingClient returns the client end of a sans-IO connection.
func NonBlockingClient(cfg *Config) *NonBlockingConn { return ssl.NonBlockingClient(cfg) }

// NonBlockingServer returns the server end of a sans-IO connection.
func NonBlockingServer(cfg *Config) *NonBlockingConn { return ssl.NonBlockingServer(cfg) }

// ClientConn wraps transport as the client end of an SSL connection.
func ClientConn(transport io.ReadWriteCloser, cfg *Config) *Conn {
	return ssl.ClientConn(transport, cfg)
}

// ServerConn wraps transport as the server end of an SSL connection.
func ServerConn(transport io.ReadWriteCloser, cfg *Config) *Conn {
	return ssl.ServerConn(transport, cfg)
}

// NewIdentity generates a server RSA key and self-signed certificate.
var NewIdentity = ssl.NewIdentity

// NewSessionCache returns a bounded server-side session store.
func NewSessionCache(capacity int) *SessionCache {
	return handshake.NewSessionCache(capacity)
}

// NewAnatomy returns an empty handshake anatomy recorder.
func NewAnatomy() *Anatomy { return handshake.NewAnatomy() }

// SuiteByName finds a cipher suite by its OpenSSL-style name, e.g.
// "DES-CBC3-SHA".
func SuiteByName(name string) (*Suite, error) { return suite.ByName(name) }

// Suites lists every registered cipher suite.
func Suites() []*Suite { return suite.All() }

// Experiments returns every paper experiment in paper order.
func Experiments() []*Experiment { return core.All() }

// ExperimentByID finds one experiment (e.g. "table2", "fig3").
func ExperimentByID(id string) (*Experiment, error) { return core.ByID(id) }
