# Reproduction targets for "Anatomy and Performance of SSL Processing"
# (ISPASS 2005). Everything is stdlib-only Go; no network needed.

GO ?= go
HISTDIR ?= bench_history

.PHONY: all build vet test race check clocklint blocklint pathlenlint failclasslint loadsmoke checkdrift bench repro results examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The default test path runs the telemetry suite under -race as well:
# telemetry is the one layer whose whole contract is concurrency.
test:
	$(GO) test ./...
	$(GO) test -race ./internal/telemetry/...

race:
	$(GO) test -race ./...

# CI gate: static checks plus the race detector on the packages that
# live connections emit through concurrently: the probe spine and its
# sink adapters (telemetry, the span tracer), the record layer and the
# macpipe sealing pipeline behind its flight path, the batch-RSA and
# accel engines, the handshake session cache, perf (whose model-GHz
# setting is shared mutable state), and the load generator + drift
# engine — then a real end-to-end smoke through sslload's in-process
# server.
check:
	$(GO) vet ./...
	$(MAKE) clocklint
	$(MAKE) blocklint
	$(MAKE) pathlenlint
	$(MAKE) failclasslint
	$(GO) test -race ./internal/probe/... ./internal/telemetry/... ./internal/trace/... \
		./internal/ssl/... ./internal/record/... ./internal/macpipe/... ./internal/rsabatch/... \
		./internal/handshake/... ./internal/accel/... ./internal/perf/... \
		./internal/loadgen/... ./internal/baseline/... ./internal/pathlen/... \
		./internal/lifecycle/... ./internal/slo/... \
		./internal/history/... ./internal/debughttp/... ./cmd/ssltop/...
	$(MAKE) loadsmoke

# The spine owns every clock read on the handshake and record hot
# paths (one stamp per event, sinks never re-stamp). Direct time.Now
# calls there bypass the nil-bus fast path; the rare legitimate one
# (config defaults) carries a "lint:allow-clock" marker.
clocklint:
	@bad=$$(grep -n 'time\.Now()' internal/handshake/*.go internal/record/*.go \
		| grep -v _test.go | grep -v 'lint:allow-clock'; exit 0); \
	if [ -n "$$bad" ]; then \
		echo "clocklint: direct clock reads on the probe-spine hot path (mark intentional ones with // lint:allow-clock):"; \
		echo "$$bad"; exit 1; \
	fi

# The handshake FSMs and the record Core are sans-IO: every byte they
# consume arrives through Core.Feed, and a short read surfaces as
# ErrWouldBlock — never as a blocking transport read. A direct
# io.ReadFull or .Read( call in those files would park the event loop
# on one connection's socket. The rare legitimate read (the config's
# randomness source) carries a "lint:allow-read" marker. The blocking
# Layer adapter (record/record.go) is the one place transport reads
# belong, so it is exempt.
blocklint:
	@bad=$$(grep -n 'io\.ReadFull\|\.Read(' internal/handshake/*.go internal/record/core.go \
		| grep -v _test.go | grep -v 'lint:allow-read'; exit 0); \
	if [ -n "$$bad" ]; then \
		echo "blocklint: blocking reads inside the sans-IO core (mark intentional non-transport ones with // lint:allow-read):"; \
		echo "$$bad"; exit 1; \
	fi

# Every probe.Step constant must carry a path-length row mapping in
# internal/pathlen/steps.go (the stepClasses table), mirroring
# clocklint's grep discipline: a new handshake step cannot ship
# without deciding which /debug/pathlength class its bytes charge to.
# TestStepClassesCoverProbeSteps enforces the same invariant
# in-language; this catches it before the test suite even runs.
pathlenlint:
	@steps=$$(sed -n 's/^\t\(Step[A-Za-z0-9]*\) Step = iota.*/\1/p; s/^\t\(Step[A-Za-z0-9]*\)$$/\1/p' internal/probe/probe.go | sort -u); \
	missing=""; \
	for s in $$steps; do \
		grep -q "probe\.$$s:" internal/pathlen/steps.go || missing="$$missing $$s"; \
	done; \
	if [ -n "$$missing" ]; then \
		echo "pathlenlint: probe.Step constants with no stepClasses row in internal/pathlen/steps.go:$$missing"; \
		exit 1; \
	fi

# Every probe.FailClass constant must carry a name row in the
# failClassInfo table and a case in the internal/ssl mapping test
# (TestClassifyTable), so a new failure class cannot ship without a
# canonical tag and a pinned example of what maps onto it — the same
# grep discipline pathlenlint applies to handshake steps.
failclasslint:
	@classes=$$(sed -n 's/^\t\(Fail[A-Za-z0-9]*\) FailClass = iota.*/\1/p; s/^\t\(Fail[A-Za-z0-9]*\)$$/\1/p' internal/probe/failclass.go | sort -u); \
	missing=""; \
	for c in $$classes; do \
		grep -q "$$c:" internal/probe/failclass.go || missing="$$missing $$c(name)"; \
		grep -q "probe\.$$c" internal/ssl/failclass_test.go || missing="$$missing $$c(mapping-test)"; \
	done; \
	if [ -n "$$missing" ]; then \
		echo "failclasslint: probe.FailClass constants missing a failClassInfo name or a mapping-test case:$$missing"; \
		exit 1; \
	fi

# End-to-end smoke: sslload drives an in-process sslserver open-loop
# for 5s and gates its own report through the load-latency shape
# checks (non-zero exit on failures or shape drift).
loadsmoke:
	$(GO) run ./cmd/sslload -selftest -rate 200 -duration 5s -warmup 1s -resume 0.3 -seed 1

# Drift gate: re-validate every committed docs/BENCH_*.json against
# the paper's expectation shapes and, where docs/bench_history/ holds
# archived runs, against the most recent archive.
checkdrift:
	$(GO) run ./cmd/benchjson -checkdrift docs

# Run every benchmark with -benchmem and refresh the machine-readable
# results committed under docs/ (cmd/benchjson parses the go test
# output, including custom metrics like decrypts/s, and derives the
# /batch=N speedup curve). Before refreshing, the current committed
# reports are archived into docs/bench_history/ with a timestamp, so
# `make checkdrift` can compare the new numbers against the trend.
bench:
	mkdir -p docs/$(HISTDIR)
	for f in docs/BENCH_*.json; do \
		cp $$f docs/$(HISTDIR)/$$(basename $$f .json)-$$(date +%Y%m%d%H%M%S).json; \
	done
	$(GO) test -bench=. -benchmem -run=NONE ./...
	$(GO) run ./cmd/benchjson -quiet -pkg ./internal/rsabatch/ -bench BenchmarkBatchDecrypt \
		-count 3 -name rsa-batch-amortization -out docs/BENCH_rsa_batch.json \
		-note "Fiat batch RSA over a 1024-bit shared modulus: decrypts/s at batch width 1 (per-request CRT, the engine's singleton path) vs one full-size exponentiation amortized over 2/4/8 concurrent requests. Speedup is ops/s relative to batch=1."
	$(GO) run ./cmd/benchjson -quiet -pkg ./internal/record/ -bench 'BenchmarkRecord(Seal|Open)' \
		-count 3 -name record-seal-allocs -out docs/BENCH_record.json \
		-note "Record-layer seal/open with the pooled seal buffer and in-place MAC: steady state is one amortized allocation per sealed record (the sync.Pool interface box), down from a fresh MaxFragment buffer plus MAC scratch per record."
	$(GO) run ./cmd/benchjson -quiet -pkg ./internal/ssl/ -bench 'BenchmarkHandshakeTrace(Off|Sampled16|Always)' \
		-count 3 -name trace-overhead -out docs/BENCH_trace.json \
		-note "Span-tracing overhead on the full-handshake benchmark: Off is the nil-tracer baseline (one pointer test per hook), Sampled16 the documented 1-in-16 production setting, Always the worst case where every handshake records ~40 spans and folds into the live anatomy profiler."
	$(GO) run ./cmd/benchjson -quiet -pkg ./internal/ssl/ -bench 'BenchmarkHandshakeProbe(Off|Sampled16|All)' \
		-count 3 -name probe-overhead -out docs/BENCH_probe.json \
		-note "Probe-spine fan-out cost on the full-handshake benchmark: Off is the sink-free nil-bus path (one pointer test per hook, zero allocations), Sampled16 the production 1-in-16 trace sampling, All the worst case with every sink adapter attached — anatomy fold + telemetry counters + always-on span building riding one event stream."
	$(GO) run ./cmd/benchjson -quiet -pkg ./internal/lifecycle/ -bench BenchmarkConnTable \
		-count 3 -name lifecycle-conn-table -out docs/BENCH_lifecycle.json \
		-note "Conn-table hot path for the lifecycle observatory: register-close is the bare table round trip (pooled entry, lock-striped shard insert/delete), full-life adds handshake transitions with step and record events on the probe spine plus the SLO window fold, emit is one record-IO event folding into an established entry's counters. The shape gate holds every path at zero allocations per operation — attaching the observatory costs bookkeeping, not garbage."
	$(GO) run ./cmd/benchjson -quiet -pkg ./internal/history/ -bench BenchmarkHistorySample \
		-count 3 -name history-sampler -out docs/BENCH_history.json \
		-note "Time-series observatory tick: one SampleNow over every standard source (telemetry counters, runtime metrics via a reused sample buffer, the 10s SLO window fold, the conn-table walk, pathlen cipher/MAC totals, anatomy step shares) landing in the two-resolution rings. The shape gate holds the tick at zero allocations and under 1% of the 1s sampling interval, so /debug/history and /debug/watch can stay on in production."
	$(GO) run ./cmd/benchjson -quiet -pkg ./internal/ssl/ -bench 'Benchmark(NonBlock|GoroutinePerConn|IdleConns)' \
		-count 3 -name nonblock -out docs/BENCH_nonblock.json \
		-note "Sans-IO core economics: NonBlockHandshake steps the resumable FSM pair entirely in memory vs GoroutinePerConnHandshake's blocking wrappers over the pipe (same crypto, so the two must stay within 1.5x), IdleConns holds b.N established idle server conns and attributes the settled heap+stack bytes per connection — the event-loop flavor keeps only the NonBlockingConn core, the goroutine flavor also parks the per-conn serve goroutine in Read — and NonBlockReadSteady is the zero-allocation steady-state seal/feed/read round trip. The shape gate pins eventloop bytes/conn strictly below goroutine bytes/conn and the read path at 0 allocs/op."
		-count 3 -name bulk-path -out docs/BENCH_bulk.json \
		-note "Bulk-path cycles/byte per suite from the pathlen collector riding the server's probe spine: 16KB records written through the full record layer, cipher and MAC cost attributed per primitive (the live Tables 11/12), plus the syscall story — writes/record (1.0 contiguous seal, ~1/64 vectored) and MB/s + records/s for the -seq1m (1MiB writes, flight off) vs -vec (flight pipeline) pair. The shape gate holds RC4 cheaper than AES, MD5 cheaper than SHA-1, 3DES a multiple of DES, writes/record at or under 1, and vectored throughput at or above the same-size sequential baseline."

# Regenerate every table and figure of the paper (plus the ablations).
repro:
	$(GO) run ./cmd/sslanatomy -experiment all -iterations 5

# Refresh the committed raw results.
results:
	$(GO) run ./cmd/sslanatomy -experiment all -iterations 5 > docs/RESULTS.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/banking -sessions 10
	$(GO) run ./examples/filetransfer -size 1048576
	$(GO) run ./examples/bulktransfer -size 1048576
	$(GO) run ./examples/webserver

clean:
	$(GO) clean ./...
