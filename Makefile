# Reproduction targets for "Anatomy and Performance of SSL Processing"
# (ISPASS 2005). Everything is stdlib-only Go; no network needed.

GO ?= go

.PHONY: all build vet test race check bench repro results examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The default test path runs the telemetry suite under -race as well:
# telemetry is the one layer whose whole contract is concurrency.
test:
	$(GO) test ./...
	$(GO) test -race ./internal/telemetry/...

race:
	$(GO) test -race ./...

# CI gate: static checks plus the race detector on the packages that
# live connections emit through concurrently.
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/telemetry/... ./internal/ssl/... ./internal/record/...

bench:
	$(GO) test -bench=. -benchmem -run=NONE ./...

# Regenerate every table and figure of the paper (plus the ablations).
repro:
	$(GO) run ./cmd/sslanatomy -experiment all -iterations 5

# Refresh the committed raw results.
results:
	$(GO) run ./cmd/sslanatomy -experiment all -iterations 5 > docs/RESULTS.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/banking -sessions 10
	$(GO) run ./examples/filetransfer -size 1048576
	$(GO) run ./examples/bulktransfer -size 1048576
	$(GO) run ./examples/webserver

clean:
	$(GO) clean ./...
