# Reproduction targets for "Anatomy and Performance of SSL Processing"
# (ISPASS 2005). Everything is stdlib-only Go; no network needed.

GO ?= go

.PHONY: all build vet test race bench repro results examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=NONE ./...

# Regenerate every table and figure of the paper (plus the ablations).
repro:
	$(GO) run ./cmd/sslanatomy -experiment all -iterations 5

# Refresh the committed raw results.
results:
	$(GO) run ./cmd/sslanatomy -experiment all -iterations 5 > docs/RESULTS.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/banking -sessions 10
	$(GO) run ./examples/filetransfer -size 1048576
	$(GO) run ./examples/bulktransfer -size 1048576
	$(GO) run ./examples/webserver

clean:
	$(GO) clean ./...
